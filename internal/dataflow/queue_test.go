package dataflow

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

func TestQueueFIFO(t *testing.T) {
	q := newQueue()
	for i := 0; i < 10; i++ {
		q.push(batchMsg{rows: []relation.Tuple{{int64(i)}}})
	}
	q.close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		m, ok, err := q.pop(ctx)
		if err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
		if m.rows[0][0] != int64(i) {
			t.Fatalf("pop %d got %v", i, m.rows[0][0])
		}
	}
	if _, ok, err := q.pop(ctx); ok || err != nil {
		t.Fatal("closed drained queue should return !ok, nil error")
	}
}

func TestQueueBlocksUntilPush(t *testing.T) {
	q := newQueue()
	got := make(chan int64, 1)
	go func() {
		m, ok, _ := q.pop(context.Background())
		if ok {
			got <- m.rows[0][0].(int64)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.push(batchMsg{rows: []relation.Tuple{{int64(42)}}})
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke up")
	}
}

func TestQueuePopHonorsContext(t *testing.T) {
	q := newQueue()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := q.pop(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected context error")
		}
	case <-time.After(time.Second):
		t.Fatal("pop did not return on cancel")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := newQueue()
	const producers, each = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				q.push(batchMsg{rows: []relation.Tuple{{int64(i)}}})
			}
		}()
	}
	go func() {
		wg.Wait()
		q.close()
	}()
	count := 0
	ctx := context.Background()
	for {
		_, ok, err := q.pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != producers*each {
		t.Fatalf("received %d of %d messages", count, producers*each)
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	q := newQueue()
	q.close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.push(batchMsg{})
}

func TestGatePauseResume(t *testing.T) {
	g := newGate()
	if g.paused() {
		t.Fatal("new gate should be open")
	}
	if err := g.wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.pause()
	if !g.paused() {
		t.Fatal("gate should be paused")
	}
	g.pause() // idempotent
	released := make(chan struct{})
	go func() {
		g.wait(context.Background())
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("wait returned while paused")
	case <-time.After(20 * time.Millisecond):
	}
	g.resume()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("wait did not release after resume")
	}
	g.resume() // idempotent
	if g.paused() {
		t.Fatal("gate should be open after resume")
	}
}

func TestGateWaitHonorsContext(t *testing.T) {
	g := newGate()
	g.pause()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.wait(ctx); err == nil {
		t.Fatal("expected context error")
	}
}
