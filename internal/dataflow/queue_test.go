package dataflow

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

func TestQueueFIFO(t *testing.T) {
	q := newQueue()
	for i := 0; i < 10; i++ {
		q.push(batchMsg{rows: []relation.Tuple{{int64(i)}}})
	}
	q.close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		m, ok, err := q.pop(ctx)
		if err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
		if m.rows[0][0] != int64(i) {
			t.Fatalf("pop %d got %v", i, m.rows[0][0])
		}
	}
	if _, ok, err := q.pop(ctx); ok || err != nil {
		t.Fatal("closed drained queue should return !ok, nil error")
	}
}

func TestQueueDepth(t *testing.T) {
	q := newQueue()
	if q.Depth() != 0 {
		t.Fatalf("empty queue Depth = %d, want 0", q.Depth())
	}
	for i := 0; i < 5; i++ {
		q.push(batchMsg{rows: []relation.Tuple{{int64(i)}}})
		if got := q.Depth(); got != i+1 {
			t.Fatalf("Depth after %d pushes = %d", i+1, got)
		}
	}
	ctx := context.Background()
	if _, _, err := q.pop(ctx); err != nil {
		t.Fatal(err)
	}
	if got := q.Depth(); got != 4 {
		t.Fatalf("Depth after pop = %d, want 4", got)
	}
	// Depth must be safe against concurrent producers (exercised with
	// -race): readers take the queue lock rather than racing on count.
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.push(batchMsg{})
				_ = q.Depth()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = q.Depth()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := q.Depth(); got != 404 {
		t.Fatalf("Depth after concurrent pushes = %d, want 404", got)
	}
}

func TestQueueBlocksUntilPush(t *testing.T) {
	q := newQueue()
	got := make(chan int64, 1)
	go func() {
		m, ok, _ := q.pop(context.Background())
		if ok {
			got <- m.rows[0][0].(int64)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.push(batchMsg{rows: []relation.Tuple{{int64(42)}}})
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke up")
	}
}

func TestQueuePopHonorsContext(t *testing.T) {
	q := newQueue()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := q.pop(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected context error")
		}
	case <-time.After(time.Second):
		t.Fatal("pop did not return on cancel")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := newQueue()
	const producers, each = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				q.push(batchMsg{rows: []relation.Tuple{{int64(i)}}})
			}
		}()
	}
	go func() {
		wg.Wait()
		q.close()
	}()
	count := 0
	ctx := context.Background()
	for {
		_, ok, err := q.pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != producers*each {
		t.Fatalf("received %d of %d messages", count, producers*each)
	}
}

// TestQueueWraparound interleaves pushes and pops so head laps the
// ring repeatedly, across several growths.
func TestQueueWraparound(t *testing.T) {
	q := newQueue()
	ctx := context.Background()
	next := int64(0) // next value to push
	want := int64(0) // next value expected from pop
	push := func(n int) {
		for i := 0; i < n; i++ {
			q.push(batchMsg{rows: []relation.Tuple{{next}}})
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			m, ok, err := q.pop(ctx)
			if err != nil || !ok {
				t.Fatalf("pop: ok=%v err=%v", ok, err)
			}
			if got := m.rows[0][0].(int64); got != want {
				t.Fatalf("pop got %d, want %d", got, want)
			}
			want++
		}
	}
	// Drive head around the ring with uneven push/pop bursts, growing
	// the buffer from 8 to 16 to 32 along the way.
	push(6)
	pop(4)
	for i := 0; i < 50; i++ {
		push(7)
		pop(5)
	}
	pop(int(next - want))
	if q.count != 0 {
		t.Fatalf("queue should be empty, count=%d", q.count)
	}
}

// TestQueuePopReleasesSlot pins the memory-retention fix: a popped
// slot must be zeroed so the consumed batch is collectable while the
// ring's backing array lives on.
func TestQueuePopReleasesSlot(t *testing.T) {
	q := newQueue()
	q.push(batchMsg{rows: []relation.Tuple{{int64(1)}}})
	head := q.head
	if _, ok, err := q.pop(context.Background()); !ok || err != nil {
		t.Fatalf("pop: ok=%v err=%v", ok, err)
	}
	if q.buf[head].rows != nil {
		t.Fatal("popped slot still references its batch")
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	q := newQueue()
	q.close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.push(batchMsg{})
}

func TestGatePauseResume(t *testing.T) {
	g := newGate()
	if g.paused() {
		t.Fatal("new gate should be open")
	}
	if err := g.wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.pause()
	if !g.paused() {
		t.Fatal("gate should be paused")
	}
	g.pause() // idempotent
	released := make(chan struct{})
	go func() {
		g.wait(context.Background())
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("wait returned while paused")
	case <-time.After(20 * time.Millisecond):
	}
	g.resume()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("wait did not release after resume")
	}
	g.resume() // idempotent
	if g.paused() {
		t.Fatal("gate should be open after resume")
	}
}

func TestGateWaitHonorsContext(t *testing.T) {
	g := newGate()
	g.pause()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.wait(ctx); err == nil {
		t.Fatal("expected context error")
	}
}
