package dataflow

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

func benchBatch() batchMsg {
	rows := make([]relation.Tuple, 16)
	for i := range rows {
		rows[i] = relation.Tuple{int64(i), "payload"}
	}
	return batchMsg{rows: rows}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := newQueue()
	m := benchBatch()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(m)
		if _, ok, err := q.pop(ctx); !ok || err != nil {
			b.Fatalf("pop: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkQueuePushPopBurst(b *testing.B) {
	const burst = 256
	q := newQueue()
	m := benchBatch()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < burst; j++ {
			q.push(m)
		}
		for j := 0; j < burst; j++ {
			if _, ok, err := q.pop(ctx); !ok || err != nil {
				b.Fatalf("pop: ok=%v err=%v", ok, err)
			}
		}
	}
}

func benchRuntime(workers int) *nodeRuntime {
	rt := &nodeRuntime{n: &node{parallelism: workers}}
	rt.shards = make([]workShard, workers)
	for s := range rt.shards {
		rt.shards[s].byPort = make([]cost.Work, 2)
	}
	return rt
}

func BenchmarkAddWork(b *testing.B) {
	rt := benchRuntime(1)
	ec := &execCtx{rt: rt, shard: &rt.shards[0], phase: 0}
	w := cost.Work{Interp: 1e-6, Mem: 2e-7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec.AddWork(w)
	}
}

// BenchmarkAddWorkParallel drives one execCtx per goroutine against a
// shared runtime — the pattern every multi-worker operator follows.
// With the old shared mutex this serialized; with per-worker shards it
// scales with core count.
func BenchmarkAddWorkParallel(b *testing.B) {
	const workers = 8
	rt := benchRuntime(workers)
	w := cost.Work{Interp: 1e-6, Mem: 2e-7}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		shard := int(next.Add(1)-1) % workers
		ec := &execCtx{rt: rt, shard: &rt.shards[shard], phase: 0}
		for pb.Next() {
			ec.AddWork(w)
		}
	})
}
