package dataflow

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sim"
)

// Lower converts an execution trace into simulator jobs and pools.
//
// The mapping follows the pipelined-dataflow semantics of the engine:
//
//   - every node gets a pool with one slot per worker, so operator
//     parallelism bounds how many of its batch jobs run concurrently;
//   - each input batch of each port becomes a job whose cost is the
//     node's recorded CPU work for that port (converted through the
//     operator's language) plus deserialization, spread evenly over the
//     port's batches; serialization of a node's output is charged to
//     the jobs that emit it;
//   - a batch job depends on the upstream job that emitted its batch —
//     which is what lets consecutive operators overlap in time
//     (pipelining) — and on a barrier over all earlier ports, because a
//     worker drains ports strictly in order (a join's probe cannot
//     start before its build side is complete);
//   - fully blocking operators (sort, group-by, model training) emit
//     from their end job, so nothing downstream starts until they have
//     consumed all input;
//   - per-node startup jobs and a workflow-submission job model the
//     fixed overheads of the controller.
func Lower(tr *Trace, m *cost.Model) ([]sim.Job, []sim.Pool, error) {
	jobs, pools, _, err := lowerWithMeta(tr, m)
	return jobs, pools, err
}

// jobMeta tags one lowered job with its provenance, which the recovery
// layer needs: checkpoint write taxes apply to data batch jobs, and a
// killed batch job pays a checkpoint restore for its node.
type jobMeta struct {
	// Node is the trace node the job belongs to, or -1 for
	// controller-level jobs (workflow submission).
	Node NodeID
	// Batch marks jobs that process (or generate) one data batch.
	Batch bool
}

// lowerWithMeta is Lower plus a parallel per-job metadata slice
// (meta[i] describes jobs[i]; job IDs are dense indices).
func lowerWithMeta(tr *Trace, m *cost.Model) ([]sim.Job, []sim.Pool, []jobMeta, error) {
	if tr == nil {
		return nil, nil, nil, fmt.Errorf("dataflow: nil trace")
	}
	if err := m.Validate(); err != nil {
		return nil, nil, nil, err
	}

	nodeByID := make(map[NodeID]*NodeTrace, len(tr.Nodes))
	for i := range tr.Nodes {
		nodeByID[tr.Nodes[i].ID] = &tr.Nodes[i]
	}
	inEdges := make(map[NodeID][]*EdgeTrace)
	outEdges := make(map[NodeID][]*EdgeTrace)
	for i := range tr.Edges {
		e := &tr.Edges[i]
		if _, ok := nodeByID[e.From]; !ok {
			return nil, nil, nil, fmt.Errorf("dataflow: edge from unknown node %d", e.From)
		}
		if _, ok := nodeByID[e.To]; !ok {
			return nil, nil, nil, fmt.Errorf("dataflow: edge to unknown node %d", e.To)
		}
		inEdges[e.To] = append(inEdges[e.To], e)
		outEdges[e.From] = append(outEdges[e.From], e)
	}

	const controllerPool = "controller"
	pools := []sim.Pool{{Name: controllerPool, Slots: 1}}
	poolOf := make(map[NodeID]string, len(tr.Nodes))
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		name := fmt.Sprintf("n%d:%s", n.ID, n.Name)
		poolOf[n.ID] = name
		slots := n.Parallelism
		if slots < 1 {
			slots = 1
		}
		pools = append(pools, sim.Pool{Name: name, Slots: slots})
	}

	var jobs []sim.Job
	var meta []jobMeta
	curNode := NodeID(-1) // node being lowered; -1 = controller
	nextID := sim.JobID(0)
	addJob := func(name, pool string, costSec, latency float64, deps []sim.JobID) sim.JobID {
		id := nextID
		nextID++
		jobs = append(jobs, sim.Job{
			ID: id, Name: name, Pool: pool,
			Cost: costSec, Latency: latency, Deps: deps,
		})
		meta = append(meta, jobMeta{Node: curNode})
		return id
	}
	addBatchJob := func(name, pool string, costSec, latency float64, deps []sim.JobID) sim.JobID {
		id := addJob(name, pool, costSec, latency, deps)
		meta[int(id)].Batch = true
		return id
	}

	// Workflow submission.
	rootID := addJob("submit:"+tr.Workflow, controllerPool, m.ControlOverhead, 0, nil)

	// Process nodes in topological order so upstream emit jobs exist
	// when consumers are lowered. Node IDs are assigned in creation
	// order which is not necessarily topological, so sort by
	// dependencies.
	order, err := topoNodeOrder(tr.Nodes, tr.Edges)
	if err != nil {
		return nil, nil, nil, err
	}

	emitJobsOf := make(map[NodeID][]sim.JobID, len(tr.Nodes))
	for _, nid := range order {
		n := nodeByID[nid]
		curNode = nid
		pool := poolOf[nid]
		lang := n.Language

		startup := addJob("startup:"+n.Name, pool, m.OperatorStartup, 0, []sim.JobID{rootID})
		// Per-worker initialization (Open): workers initialize in
		// parallel, so the gate costs OpenWork divided by parallelism.
		if open := n.OpenWork.Seconds(lang); open > 0 {
			par := n.Parallelism
			if par < 1 {
				par = 1
			}
			startup = addJob("init:"+n.Name, pool, open/float64(par), 0, []sim.JobID{startup})
		}

		ins := make([]*EdgeTrace, 0, len(inEdges[nid]))
		ins = append(ins, inEdges[nid]...)
		// Ports in ascending order.
		for i := 0; i < len(ins); i++ {
			for j := i + 1; j < len(ins); j++ {
				if ins[j].Port < ins[i].Port {
					ins[i], ins[j] = ins[j], ins[i]
				}
			}
		}

		// Output serialization: the engine serializes a node's output
		// once per out edge (each consumer link carries its own copy).
		var outBytes int64
		for _, e := range outEdges[nid] {
			outBytes += e.Bytes
		}
		encodeTotal := m.SerdeSeconds(outBytes)

		var allPortJobs []sim.JobID
		var lastPortJobs []sim.JobID
		prevBarrier := startup
		for pi, e := range ins {
			work := 0.0
			if e.Port < len(n.WorkByPort) {
				work = n.WorkByPort[e.Port].Seconds(lang)
			}
			decode := m.SerdeSeconds(e.Bytes)
			b := int(e.Batches)
			var portJobs []sim.JobID
			if b > 0 {
				perJob := (work + decode) / float64(b)
				// Batch latency: the node-local transfer plus, on the
				// sharded tier, the exchange's cross-node scatter at the
				// same NIC rate. ShuffleBytes is zero on the legacy tier,
				// so this lowers bit-identically to the single-cluster
				// path there.
				latency := m.TransferSeconds(e.Bytes/int64(b)) + m.ShuffleSeconds(e.ShuffleBytes/int64(b))
				upstream := emitJobsOf[e.From]
				for j := 0; j < b; j++ {
					deps := []sim.JobID{prevBarrier}
					if len(upstream) > 0 {
						k := j
						if k >= len(upstream) {
							k = len(upstream) - 1
						}
						deps = append(deps, upstream[k])
					}
					id := addBatchJob(fmt.Sprintf("%s:p%d:b%d", n.Name, e.Port, j), pool, perJob, latency, deps)
					portJobs = append(portJobs, id)
				}
			} else if up := emitJobsOf[e.From]; len(up) > 0 {
				// Empty stream: a zero-cost job keeps the dependency on
				// the upstream end-of-stream.
				id := addJob(fmt.Sprintf("%s:p%d:eos", n.Name, e.Port), pool, 0, 0, append([]sim.JobID{prevBarrier}, up[len(up)-1]))
				portJobs = append(portJobs, id)
			}
			allPortJobs = append(allPortJobs, portJobs...)
			lastPortJobs = portJobs
			// Barrier: later ports wait for this whole port (workers
			// drain ports in order).
			if pi < len(ins)-1 {
				prevBarrier = addJob(fmt.Sprintf("%s:p%d:end", n.Name, e.Port), pool, 0, 0, append([]sim.JobID{prevBarrier}, portJobs...))
			}
		}

		// Source nodes have no input edges; their generation work is
		// in WorkByPort[0], spread over emitted batches.
		if len(ins) == 0 {
			b := int(n.EmittedBatches)
			work := 0.0
			if len(n.WorkByPort) > 0 {
				work = n.WorkByPort[0].Seconds(lang)
			}
			if b > 0 {
				perJob := (work + encodeTotal) / float64(b)
				for j := 0; j < b; j++ {
					id := addBatchJob(fmt.Sprintf("%s:gen:b%d", n.Name, j), pool, perJob, 0, []sim.JobID{startup})
					allPortJobs = append(allPortJobs, id)
					lastPortJobs = append(lastPortJobs, id)
				}
			}
			encodeTotal = 0 // already charged
		}

		// End job: EndPort/Close work plus, for fully blocking
		// operators, the whole output serialization. SpillSeconds folds
		// in the grace build/probe passes a larger-than-memory operator
		// paid on the sharded tier (zero elsewhere).
		endCost := n.EndWork.Seconds(lang) + n.SpillSeconds
		if n.FullyBlocking {
			endCost += encodeTotal
		} else if len(lastPortJobs) > 0 && encodeTotal > 0 {
			// Streaming operators serialize as they emit: spread the
			// encode cost over the emitting jobs by appending it to
			// their costs.
			share := encodeTotal / float64(len(lastPortJobs))
			for _, id := range lastPortJobs {
				jobs[int(id)].Cost += share
			}
			encodeTotal = 0
		}
		endDeps := append([]sim.JobID{startup}, allPortJobs...)
		endID := addJob(fmt.Sprintf("%s:close", n.Name), pool, endCost, 0, endDeps)

		switch {
		case n.FullyBlocking:
			emitJobsOf[nid] = []sim.JobID{endID}
		case len(lastPortJobs) > 0:
			emitJobsOf[nid] = lastPortJobs
		default:
			emitJobsOf[nid] = []sim.JobID{endID}
		}
	}

	return jobs, pools, meta, nil
}

// topoNodeOrder sorts trace node IDs topologically.
func topoNodeOrder(nodes []NodeTrace, edges []EdgeTrace) ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(nodes))
	adj := make(map[NodeID][]NodeID)
	for _, n := range nodes {
		indeg[n.ID] = 0
	}
	for _, e := range edges {
		indeg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
	}
	var queue []NodeID
	for _, n := range nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	var order []NodeID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, to := range adj[id] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("dataflow: trace contains a cycle")
	}
	return order, nil
}

// SimTime lowers a trace and schedules it, returning the simulated
// makespan.
func SimTime(tr *Trace, m *cost.Model) (float64, error) {
	jobs, pools, err := Lower(tr, m)
	if err != nil {
		return 0, err
	}
	res, err := sim.Schedule(jobs, pools)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
