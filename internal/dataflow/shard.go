package dataflow

import (
	"fmt"

	"repro/internal/shard"
)

// The sharded tier prices multi-node execution onto the trace after the
// data plane has run, and before lowering: each edge's partitioning
// becomes an exchange operator whose cross-node bytes ride the NIC, and
// each blocking operator's per-worker state is run through the grace
// spill planner against the topology's memory budget. Like faults, the
// tier acts only on the schedule/cost plane — sink tables are
// bit-identical to the single-cluster run, which the golden topology
// tests pin.

// spillSkewFraction is the modeled share of a blocking operator's state
// landing in its hottest grace partition. Real key distributions are
// mildly skewed; twice the uniform share is the conventional planning
// assumption, and it is what triggers recursive repartitioning once the
// hot partition alone outgrows the worker budget.
const spillSkewFraction = 2.0 / shard.SpillFanout

// exchangeOf maps an edge partitioning to its cross-node exchange kind.
// Round-robin (and 1→1) edges stay node-local: datum sharding co-
// locates map-like consumers with their producers' shards, so only
// key-based repartitioning and broadcasts cross the NIC.
func exchangeOf(k partKind) shard.Exchange {
	switch k {
	case partHash:
		return shard.ExHash
	case partBroadcast:
		return shard.ExBroadcast
	default:
		return shard.ExLocal
	}
}

// annotateShard fills the trace's ShuffleBytes and Spill fields for a
// sharded topology. Called between buildTrace and lowering; a no-op on
// the legacy tier.
func (ex *Execution) annotateShard(tr *Trace) error {
	topo, err := ex.cfg.Shard.Normalize()
	if err != nil {
		return err
	}
	if !topo.Sharded() {
		return nil
	}
	nodes := topo.NumNodes()

	// Exchange pricing: each trace edge inherits its workflow edge's
	// partitioning. Key: (from, to, port) — unique because a consumer
	// port has one producer.
	type edgeKey struct {
		from, to NodeID
		port     int
	}
	kinds := make(map[edgeKey]partKind)
	for _, n := range ex.wf.nodes {
		for _, e := range n.outEdges {
			kinds[edgeKey{e.from.id, e.to.id, e.port}] = e.part.kind
		}
	}
	for i := range tr.Edges {
		e := &tr.Edges[i]
		k, ok := kinds[edgeKey{e.From, e.To, e.Port}]
		if !ok {
			return fmt.Errorf("dataflow: trace edge %d->%d:p%d has no workflow edge", e.From, e.To, e.Port)
		}
		e.ShuffleBytes = exchangeOf(k).CrossBytes(e.Bytes, nodes)
	}

	// Spill planning: a blocking operator's state (join build side,
	// group-by table) is hash-partitioned across its workers; when one
	// worker's share outgrows the topology's budget it takes the grace
	// partition-wise build/probe path. Workers spill concurrently, so
	// the node pays one worker's plan in time and all workers' files in
	// bytes.
	budget := topo.WorkerMem()
	if budget <= 0 {
		return nil
	}
	inBytes := make(map[NodeID][]int64) // per consumer, indexed by port
	for i := range tr.Edges {
		e := &tr.Edges[i]
		ports := inBytes[e.To]
		for len(ports) <= e.Port {
			ports = append(ports, 0)
		}
		ports[e.Port] += e.Bytes
		inBytes[e.To] = ports
	}
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if n.Kind != "operator" {
			continue
		}
		var state int64
		for port, bytes := range inBytes[n.ID] {
			blocking := port < len(n.BlockingPorts) && n.BlockingPorts[port]
			if n.FullyBlocking || blocking {
				state += bytes
			}
		}
		if state == 0 {
			continue
		}
		par := n.Parallelism
		if par < 1 {
			par = 1
		}
		plan, err := shard.PlanSpill(ex.model, state/int64(par), budget, spillSkewFraction)
		if err != nil {
			return err
		}
		if !plan.Spilled() {
			continue
		}
		n.SpillBytes = plan.SpilledBytes * int64(par)
		n.SpillSeconds = plan.Seconds
	}
	return nil
}
