package dataflow

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/relation"
)

// This file implements a JSON workflow description — the serialized
// form a GUI would produce — and its compiler into a runnable
// Workflow. It covers the engine's builtin operators; user-defined
// functions cannot be expressed in JSON and are available only through
// the Go API.

// Spec is a complete workflow description.
type Spec struct {
	Name      string     `json:"name"`
	Operators []OpSpec   `json:"operators"`
	Links     []LinkSpec `json:"links"`
}

// OpSpec describes one operator (or source or sink).
type OpSpec struct {
	ID          string `json:"id"`
	Type        string `json:"type"` // source|filter|project|join|groupby|sort|limit|union|sink
	Language    string `json:"language,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`

	// Source fields.
	Schema []FieldSpec       `json:"schema,omitempty"`
	Rows   [][]json.Number   `json:"-"` // numeric-only fast path (unused by JSON)
	Data   []json.RawMessage `json:"data,omitempty"`

	// Filter.
	Condition string `json:"condition,omitempty"`

	// Project.
	Columns []string `json:"columns,omitempty"`

	// Join.
	BuildKey string `json:"buildKey,omitempty"`
	ProbeKey string `json:"probeKey,omitempty"`
	JoinType string `json:"joinType,omitempty"` // inner|left

	// GroupBy.
	Keys         []string  `json:"keys,omitempty"`
	Aggregations []AggSpec `json:"aggregations,omitempty"`

	// Sort.
	SortBy []string `json:"sortBy,omitempty"`

	// Limit.
	Limit int `json:"limit,omitempty"`
}

// FieldSpec declares one source column.
type FieldSpec struct {
	Name string `json:"name"`
	Type string `json:"type"` // int|float|string|bool
}

// AggSpec declares one group-by aggregate.
type AggSpec struct {
	Func  string `json:"func"` // count|sum|avg|min|max
	Field string `json:"field,omitempty"`
	As    string `json:"as"`
}

// LinkSpec connects two operators.
type LinkSpec struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Port      int    `json:"port,omitempty"`
	Partition string `json:"partition,omitempty"` // roundrobin|hash|broadcast
	Key       string `json:"key,omitempty"`       // hash key
}

// ParseSpec decodes a JSON workflow description.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("dataflow: parse spec: %w", err)
	}
	return &s, nil
}

// parseFieldType maps a type name.
func parseFieldType(s string) (relation.Type, error) {
	switch s {
	case "int":
		return relation.Int, nil
	case "float":
		return relation.Float, nil
	case "string":
		return relation.String, nil
	case "bool":
		return relation.Bool, nil
	default:
		return 0, fmt.Errorf("dataflow: unknown field type %q", s)
	}
}

// parseLanguage maps a language name (empty means Python).
func parseLanguage(s string) (cost.Language, error) {
	switch s {
	case "", "python":
		return cost.Python, nil
	case "scala":
		return cost.Scala, nil
	case "java":
		return cost.Java, nil
	case "r":
		return cost.R, nil
	default:
		return 0, fmt.Errorf("dataflow: unknown language %q", s)
	}
}

// sourceTable builds the inline source table of a source OpSpec.
func sourceTable(op OpSpec) (*relation.Table, error) {
	if len(op.Schema) == 0 {
		return nil, fmt.Errorf("dataflow: source %q needs a schema", op.ID)
	}
	fields := make([]relation.Field, len(op.Schema))
	for i, f := range op.Schema {
		ft, err := parseFieldType(f.Type)
		if err != nil {
			return nil, err
		}
		fields[i] = relation.Field{Name: f.Name, Type: ft}
	}
	schema, err := relation.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	tbl := relation.NewTable(schema)
	for ri, raw := range op.Data {
		var vals []any
		if err := json.Unmarshal(raw, &vals); err != nil {
			return nil, fmt.Errorf("dataflow: source %q row %d: %w", op.ID, ri, err)
		}
		if len(vals) != len(fields) {
			return nil, fmt.Errorf("dataflow: source %q row %d: %d values for %d fields", op.ID, ri, len(vals), len(fields))
		}
		row := make(relation.Tuple, len(vals))
		for ci, v := range vals {
			cv, err := coerce(v, fields[ci].Type)
			if err != nil {
				return nil, fmt.Errorf("dataflow: source %q row %d col %q: %w", op.ID, ri, fields[ci].Name, err)
			}
			row[ci] = cv
		}
		if err := tbl.Append(row); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// coerce converts a decoded JSON value to the declared column type.
func coerce(v any, t relation.Type) (any, error) {
	switch t {
	case relation.Int:
		f, ok := v.(float64)
		if !ok || f != float64(int64(f)) {
			return nil, fmt.Errorf("value %v is not an integer", v)
		}
		return int64(f), nil
	case relation.Float:
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("value %v is not a number", v)
		}
		return f, nil
	case relation.String:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("value %v is not a string", v)
		}
		return s, nil
	case relation.Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("value %v is not a boolean", v)
		}
		return b, nil
	}
	return nil, fmt.Errorf("unsupported type")
}

// condFilterOp is a filter whose predicate comes from a parsed
// condition string, resolved against the input schema at bind time.
type condFilterOp struct {
	base
	cond condition
}

func (o *condFilterOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	if len(in) != 1 || in[0] == nil {
		return nil, fmt.Errorf("dataflow: %s: filter needs exactly one input", o.desc.Name)
	}
	if _, err := o.cond.bind(in[0]); err != nil {
		return nil, err
	}
	return in[0], nil
}

func (o *condFilterOp) NewInstance() Instance { return &condFilterInstance{op: o} }

type condFilterInstance struct {
	op   *condFilterOp
	pred relation.Predicate
}

func (ci *condFilterInstance) bindSchemas(in []*relation.Schema) error {
	p, err := ci.op.cond.bind(in[0])
	if err != nil {
		return err
	}
	ci.pred = p
	return nil
}
func (ci *condFilterInstance) Open(ExecCtx) error { return nil }
func (ci *condFilterInstance) Process(ec ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ec.AddWork(DefaultFilterWork.Scale(float64(len(rows))))
	var out []relation.Tuple
	for _, r := range rows {
		if ci.pred(r) {
			out = append(out, r)
		}
	}
	return out, nil
}
func (ci *condFilterInstance) EndPort(ExecCtx, int) ([]relation.Tuple, error) { return nil, nil }
func (ci *condFilterInstance) Close(ExecCtx) error                            { return nil }

// condition is a parsed "field OP literal" predicate.
type condition struct {
	field string
	op    string
	lit   any // int64, float64, string or bool
}

// parseCondition parses expressions like `age >= 21`,
// `name == "ann"`, `ok != true`.
func parseCondition(s string) (condition, error) {
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		idx := strings.Index(s, op)
		if idx < 0 {
			continue
		}
		field := strings.TrimSpace(s[:idx])
		rhs := strings.TrimSpace(s[idx+len(op):])
		if field == "" || rhs == "" {
			return condition{}, fmt.Errorf("dataflow: malformed condition %q", s)
		}
		lit, err := parseLiteral(rhs)
		if err != nil {
			return condition{}, err
		}
		return condition{field: field, op: op, lit: lit}, nil
	}
	return condition{}, fmt.Errorf("dataflow: condition %q has no comparison operator", s)
}

func parseLiteral(s string) (any, error) {
	if strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2 {
		return s[1 : len(s)-1], nil
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return nil, fmt.Errorf("dataflow: cannot parse literal %q", s)
}

// bind resolves the condition against a schema into a predicate.
func (c condition) bind(s *relation.Schema) (relation.Predicate, error) {
	pos := s.IndexOf(c.field)
	if pos < 0 {
		return nil, fmt.Errorf("dataflow: condition field %q not in schema [%s]", c.field, s)
	}
	ft := s.Field(pos).Type
	switch lit := c.lit.(type) {
	case int64:
		switch ft {
		case relation.Int:
			return cmpPredicate(pos, c.op, func(v any) (int, bool) {
				i, ok := v.(int64)
				return compareOrdered(i, lit), ok
			})
		case relation.Float:
			f := float64(lit)
			return cmpPredicate(pos, c.op, func(v any) (int, bool) {
				x, ok := v.(float64)
				return compareOrdered(x, f), ok
			})
		}
		return nil, fmt.Errorf("dataflow: numeric condition on %s column %q", ft, c.field)
	case float64:
		if ft != relation.Float {
			return nil, fmt.Errorf("dataflow: float condition on %s column %q", ft, c.field)
		}
		return cmpPredicate(pos, c.op, func(v any) (int, bool) {
			x, ok := v.(float64)
			return compareOrdered(x, lit), ok
		})
	case string:
		if ft != relation.String {
			return nil, fmt.Errorf("dataflow: string condition on %s column %q", ft, c.field)
		}
		return cmpPredicate(pos, c.op, func(v any) (int, bool) {
			x, ok := v.(string)
			return compareOrdered(x, lit), ok
		})
	case bool:
		if ft != relation.Bool {
			return nil, fmt.Errorf("dataflow: boolean condition on %s column %q", ft, c.field)
		}
		if c.op != "==" && c.op != "!=" {
			return nil, fmt.Errorf("dataflow: boolean condition supports == and != only")
		}
		return cmpPredicate(pos, c.op, func(v any) (int, bool) {
			x, ok := v.(bool)
			if x == lit {
				return 0, ok
			}
			return 1, ok
		})
	}
	return nil, fmt.Errorf("dataflow: unsupported literal type %T", c.lit)
}

func compareOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpPredicate(pos int, op string, cmp func(any) (int, bool)) (relation.Predicate, error) {
	var want func(int) bool
	switch op {
	case "==":
		want = func(c int) bool { return c == 0 }
	case "!=":
		want = func(c int) bool { return c != 0 }
	case "<":
		want = func(c int) bool { return c < 0 }
	case "<=":
		want = func(c int) bool { return c <= 0 }
	case ">":
		want = func(c int) bool { return c > 0 }
	case ">=":
		want = func(c int) bool { return c >= 0 }
	default:
		return nil, fmt.Errorf("dataflow: unknown comparison %q", op)
	}
	return func(t relation.Tuple) bool {
		c, ok := cmp(t[pos])
		return ok && want(c)
	}, nil
}

// Build compiles a spec into a runnable workflow.
func Build(spec *Spec) (*Workflow, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("dataflow: spec has no name")
	}
	w := New(spec.Name)
	ids := make(map[string]NodeID, len(spec.Operators))
	for _, op := range spec.Operators {
		if op.ID == "" {
			return nil, fmt.Errorf("dataflow: operator with empty id")
		}
		if _, dup := ids[op.ID]; dup {
			return nil, fmt.Errorf("dataflow: duplicate operator id %q", op.ID)
		}
		lang, err := parseLanguage(op.Language)
		if err != nil {
			return nil, err
		}
		par := op.Parallelism
		if par == 0 {
			par = 1
		}
		var id NodeID
		switch op.Type {
		case "source":
			tbl, err := sourceTable(op)
			if err != nil {
				return nil, err
			}
			id = w.Source(op.ID, tbl)
		case "sink":
			id = w.Sink(op.ID)
		case "filter":
			cond, err := parseCondition(op.Condition)
			if err != nil {
				return nil, err
			}
			f := &condFilterOp{
				base: base{Desc{Name: op.ID, Language: lang, Ports: 1, BlockingPorts: []bool{false}}},
				cond: cond,
			}
			id = w.Op(f, WithParallelism(par))
		case "project":
			id = w.Op(NewProject(op.ID, lang, op.Columns...), WithParallelism(par))
		case "join":
			kind := relation.Inner
			switch op.JoinType {
			case "", "inner":
			case "left":
				kind = relation.LeftOuter
			default:
				return nil, fmt.Errorf("dataflow: unknown join type %q", op.JoinType)
			}
			id = w.Op(NewHashJoin(op.ID, lang, op.BuildKey, op.ProbeKey, kind), WithParallelism(par))
		case "groupby":
			aggs := make([]relation.Aggregate, len(op.Aggregations))
			for i, a := range op.Aggregations {
				fn, err := parseAggFunc(a.Func)
				if err != nil {
					return nil, err
				}
				aggs[i] = relation.Aggregate{Func: fn, Field: a.Field, As: a.As}
			}
			id = w.Op(NewGroupBy(op.ID, lang, op.Keys, aggs), WithParallelism(par))
		case "sort":
			id = w.Op(NewSort(op.ID, lang, op.SortBy...), WithParallelism(par))
		case "limit":
			id = w.Op(NewLimit(op.ID, lang, op.Limit), WithParallelism(par))
		case "union":
			id = w.Op(NewUnion(op.ID, lang), WithParallelism(par))
		default:
			return nil, fmt.Errorf("dataflow: unknown operator type %q", op.Type)
		}
		ids[op.ID] = id
	}
	for _, l := range spec.Links {
		from, ok := ids[l.From]
		if !ok {
			return nil, fmt.Errorf("dataflow: link from unknown operator %q", l.From)
		}
		to, ok := ids[l.To]
		if !ok {
			return nil, fmt.Errorf("dataflow: link to unknown operator %q", l.To)
		}
		var part Partitioning
		switch l.Partition {
		case "", "roundrobin":
			part = RoundRobin()
		case "hash":
			if l.Key == "" {
				return nil, fmt.Errorf("dataflow: hash link %q->%q needs a key", l.From, l.To)
			}
			part = HashPartition(l.Key)
		case "broadcast":
			part = Broadcast()
		default:
			return nil, fmt.Errorf("dataflow: unknown partitioning %q", l.Partition)
		}
		w.Connect(from, to, l.Port, part)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

func parseAggFunc(s string) (relation.AggFunc, error) {
	switch s {
	case "count":
		return relation.Count, nil
	case "sum":
		return relation.Sum, nil
	case "avg":
		return relation.Avg, nil
	case "min":
		return relation.Min, nil
	case "max":
		return relation.Max, nil
	default:
		return 0, fmt.Errorf("dataflow: unknown aggregate %q", s)
	}
}
