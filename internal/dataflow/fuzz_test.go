package dataflow

import "testing"

// FuzzParseSpec checks the JSON workflow compiler never panics: any
// input either fails to parse, fails to build, or yields a valid
// workflow.
func FuzzParseSpec(f *testing.F) {
	f.Add(demoSpec)
	f.Add(`{"name":"x","operators":[],"links":[]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"name":"x","operators":[{"id":"a","type":"source","schema":[{"name":"v","type":"int"}],"data":[[1]]},{"id":"b","type":"sink"}],"links":[{"from":"a","to":"b"}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec([]byte(input))
		if err != nil {
			return
		}
		w, err := Build(spec)
		if err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("Build returned an invalid workflow: %v", err)
		}
	})
}

// FuzzParseCondition checks the condition mini-parser never panics.
func FuzzParseCondition(f *testing.F) {
	f.Add(`age >= 21`)
	f.Add(`name == "ann"`)
	f.Add(``)
	f.Add(`<=`)
	f.Add(`x == ==`)
	f.Fuzz(func(t *testing.T, input string) {
		if _, err := parseCondition(input); err != nil {
			return
		}
	})
}
