package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/cost"
)

// This file implements the engine-side resource tuning the paper's
// Aspect #2 credits Texera with: given one profiled execution (a
// Trace), the tuner searches worker allocations on the simulator and
// recommends per-operator parallelism for a CPU budget — the burden
// the script paradigm leaves to the user.

// Retune returns a copy of the trace with new per-node parallelism.
// Recorded work totals are parallelism-independent except the
// per-worker Open initialization, which is rescaled from per-worker
// cost × new worker count.
func Retune(tr *Trace, par map[NodeID]int) *Trace {
	out := &Trace{Workflow: tr.Workflow}
	out.Edges = append(out.Edges, tr.Edges...)
	out.Nodes = make([]NodeTrace, len(tr.Nodes))
	for i, n := range tr.Nodes {
		c := n
		c.WorkByPort = append([]cost.Work(nil), n.WorkByPort...)
		c.BlockingPorts = append([]bool(nil), n.BlockingPorts...)
		if p, ok := par[n.ID]; ok && p > 0 {
			oldPar := n.Parallelism
			if oldPar < 1 {
				oldPar = 1
			}
			c.OpenWork = n.OpenWork.Scale(float64(p) / float64(oldPar))
			c.Parallelism = p
		}
		out.Nodes[i] = c
	}
	return out
}

// TuneResult is the tuner's recommendation.
type TuneResult struct {
	// Workers maps each operator to its recommended parallelism.
	Workers map[NodeID]int
	// Seconds is the simulated time under the recommendation.
	Seconds float64
	// BaselineSeconds is the simulated time with every operator at one
	// worker.
	BaselineSeconds float64
	// CoresUsed is the total workers assigned beyond sources/sinks.
	CoresUsed int
}

// AutoTune greedily assigns up to budget total workers across the
// trace's parallelizable operators, one at a time, always to the
// operator whose extra worker shrinks the simulated makespan the most.
// It stops early when no single additional worker helps.
func AutoTune(tr *Trace, m *cost.Model, budget int) (*TuneResult, error) {
	if tr == nil {
		return nil, fmt.Errorf("dataflow: nil trace")
	}
	if budget < 1 {
		return nil, fmt.Errorf("dataflow: tuning budget must be positive, got %d", budget)
	}
	var tunable []NodeID
	par := make(map[NodeID]int)
	for _, n := range tr.Nodes {
		par[n.ID] = 1
		if n.Parallelizable {
			tunable = append(tunable, n.ID)
		}
	}
	sort.Slice(tunable, func(i, j int) bool { return tunable[i] < tunable[j] })

	estimate := func() (float64, error) {
		return SimTime(Retune(tr, par), m)
	}
	baseline, err := estimate()
	if err != nil {
		return nil, err
	}
	best := baseline
	used := len(tunable) // every tunable operator starts with one worker

	for used < budget {
		bestID := NodeID(-1)
		bestTime := best
		for _, id := range tunable {
			par[id]++
			t, err := estimate()
			par[id]--
			if err != nil {
				return nil, err
			}
			if t < bestTime-1e-9 {
				bestTime = t
				bestID = id
			}
		}
		if bestID < 0 {
			break // no single extra worker helps
		}
		par[bestID]++
		best = bestTime
		used++
	}
	return &TuneResult{
		Workers:         par,
		Seconds:         best,
		BaselineSeconds: baseline,
		CoresUsed:       used,
	}, nil
}
