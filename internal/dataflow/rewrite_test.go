package dataflow

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// swapChain builds src -> wide -> narrow -> sink, all round-robin.
func swapChain() (*Workflow, NodeID, NodeID) {
	w := New("swapchain")
	src := w.Source("src", intTable(400))
	a := w.Op(NewFilter("wide", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1) < 9 }))
	b := w.Op(NewFilter("narrow", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1)%2 == 0 }))
	snk := w.Sink("out")
	w.Connect(src, a, 0, RoundRobin())
	w.Connect(a, b, 0, RoundRobin())
	w.Connect(b, snk, 0, RoundRobin())
	return w, a, b
}

func TestSwapAdjacentUnaryPreservesOutput(t *testing.T) {
	plain, _, _ := swapChain()
	swapped, a, b := swapChain()
	if err := swapped.SwapAdjacentUnary(a, b); err != nil {
		t.Fatalf("SwapAdjacentUnary: %v", err)
	}
	resPlain := runSimple(t, plain)
	resSwap := runSimple(t, swapped)
	if !resPlain.Tables["out"].Equal(resSwap.Tables["out"]) {
		t.Fatal("swapping commuting filters changed the output")
	}
}

func TestSwapAdjacentUnaryRejectsPartitionedEdges(t *testing.T) {
	w := New("swapbad")
	src := w.Source("src", intTable(100))
	a := w.Op(NewFilter("a", cost.Python, func(r relation.Tuple) bool { return true }))
	b := w.Op(NewFilter("b", cost.Python, func(r relation.Tuple) bool { return true }), WithParallelism(2))
	snk := w.Sink("out")
	w.Connect(src, a, 0, RoundRobin())
	w.Connect(a, b, 0, HashPartition("v"))
	w.Connect(b, snk, 0, RoundRobin())
	if err := w.SwapAdjacentUnary(a, b); err == nil {
		t.Fatal("SwapAdjacentUnary accepted a hash-partitioned edge")
	}
}

func TestSwapJoinInputsKeepsSchemaAndRows(t *testing.T) {
	users, orders := joinInputs()
	build := func() (*Workflow, NodeID) {
		w := New("joinswap")
		u := w.Source("users", users)
		o := w.Source("orders", orders)
		j := w.Op(NewHashJoin("join", cost.Python, "uid", "uid", relation.Inner))
		snk := w.Sink("out")
		// Mis-shaped on purpose: big orders table is the build side.
		w.Connect(o, j, 0, RoundRobin())
		w.Connect(u, j, 1, RoundRobin())
		w.Connect(j, snk, 0, RoundRobin())
		return w, j
	}
	plain, _ := build()
	swapped, j := build()
	if err := swapped.SwapJoinInputs(j); err != nil {
		t.Fatalf("SwapJoinInputs: %v", err)
	}
	resPlain := runSimple(t, plain)
	resSwap := runSimple(t, swapped)
	po, so := resPlain.Tables["out"], resSwap.Tables["out"]
	if !po.Schema().Equal(so.Schema()) {
		t.Fatalf("schema changed: %v vs %v", po.Schema(), so.Schema())
	}
	if !po.EqualUnordered(so) {
		t.Fatal("swapped join rows differ from the original join")
	}
}

func TestSwapJoinInputsRejectsOuterJoin(t *testing.T) {
	users, orders := joinInputs()
	w := New("outer")
	u := w.Source("users", users)
	o := w.Source("orders", orders)
	j := w.Op(NewHashJoin("join", cost.Python, "uid", "uid", relation.LeftOuter))
	snk := w.Sink("out")
	w.Connect(o, j, 0, RoundRobin())
	w.Connect(u, j, 1, RoundRobin())
	w.Connect(j, snk, 0, RoundRobin())
	if err := w.SwapJoinInputs(j); err == nil {
		t.Fatal("SwapJoinInputs accepted a left-outer join")
	}
}

func TestFusePreservesOutputAndCollapsesNode(t *testing.T) {
	outSchema := relation.MustSchema(relation.Field{Name: "double", Type: relation.Int})
	build := func() (*Workflow, NodeID, NodeID) {
		w := New("fusetest")
		src := w.Source("src", intTable(300))
		f := w.Op(NewFilter("keep", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1)%3 == 0 }))
		m := w.Op(NewMap("double", cost.Python, outSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
			return []relation.Tuple{{r.MustInt(1) * 2}}, nil
		}))
		snk := w.Sink("out")
		w.Connect(src, f, 0, RoundRobin())
		w.Connect(f, m, 0, RoundRobin())
		w.Connect(m, snk, 0, RoundRobin())
		return w, f, m
	}
	plain, _, _ := build()
	fused, f, m := build()
	if err := fused.Fuse(f, m); err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	if got, want := fused.NumOperators(), plain.NumOperators()-1; got != want {
		t.Fatalf("operators after fusion = %d, want %d", got, want)
	}
	resPlain := runSimple(t, plain)
	resFused := runSimple(t, fused)
	if !resPlain.Tables["out"].Equal(resFused.Tables["out"]) {
		t.Fatal("fusion changed the output")
	}
}

func TestFuseBlockingTail(t *testing.T) {
	// A stateless map fused into a blocking sort: EndPort must flush the
	// sort through the map exactly once.
	outSchema := relation.MustSchema(relation.Field{Name: "v2", Type: relation.Int})
	build := func() (*Workflow, NodeID, NodeID) {
		w := New("fuseblock")
		src := w.Source("src", intTable(200))
		s := w.Op(NewSort("sort", cost.Python, "v"))
		m := w.Op(NewMap("shift", cost.Python, outSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
			return []relation.Tuple{{r.MustInt(1) + 1}}, nil
		}))
		snk := w.Sink("out")
		w.Connect(src, s, 0, RoundRobin())
		w.Connect(s, m, 0, RoundRobin())
		w.Connect(m, snk, 0, RoundRobin())
		return w, s, m
	}
	plain, _, _ := build()
	fused, s, m := build()
	if err := fused.Fuse(s, m); err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	resPlain := runSimple(t, plain)
	resFused := runSimple(t, fused)
	if !resPlain.Tables["out"].Equal(resFused.Tables["out"]) {
		t.Fatal("fusing into a blocking upstream changed the output")
	}
}

func TestFuseRejectsBranchingProducer(t *testing.T) {
	w := New("branch")
	src := w.Source("src", intTable(100))
	a := w.Op(NewFilter("a", cost.Python, func(r relation.Tuple) bool { return true }))
	b := w.Op(NewFilter("b", cost.Python, func(r relation.Tuple) bool { return true }))
	c := w.Op(NewFilter("c", cost.Python, func(r relation.Tuple) bool { return true }))
	s1 := w.Sink("out1")
	s2 := w.Sink("out2")
	w.Connect(src, a, 0, RoundRobin())
	w.Connect(a, b, 0, RoundRobin())
	w.Connect(a, c, 0, RoundRobin())
	w.Connect(b, s1, 0, RoundRobin())
	w.Connect(c, s2, 0, RoundRobin())
	if err := w.Fuse(a, b); err == nil {
		t.Fatal("Fuse accepted a producer with two consumers")
	}
}

func TestSetEdgePartitioningBroadcastBuild(t *testing.T) {
	users, orders := joinInputs()
	w := New("repart")
	u := w.Source("users", users)
	o := w.Source("orders", orders)
	j := w.Op(NewHashJoin("join", cost.Python, "uid", "uid", relation.Inner), WithParallelism(4))
	snk := w.Sink("out")
	w.Connect(u, j, 0, HashPartition("uid"))
	w.Connect(o, j, 1, HashPartition("uid"))
	w.Connect(j, snk, 0, RoundRobin())
	if err := w.SetEdgePartitioning(j, 0, Broadcast()); err != nil {
		t.Fatalf("SetEdgePartitioning: %v", err)
	}
	if err := w.SetEdgePartitioning(j, 1, RoundRobin()); err != nil {
		t.Fatalf("SetEdgePartitioning: %v", err)
	}
	res := runSimple(t, w)
	if !res.Tables["out"].EqualUnordered(joinOracle(t, users, orders)) {
		t.Fatal("broadcast-build rewrite changed the join output")
	}
}

func TestValidateAllowsRoundRobinProbeUnderBroadcastBuild(t *testing.T) {
	users, orders := joinInputs()
	w := New("wf006")
	u := w.Source("users", users)
	o := w.Source("orders", orders)
	j := w.Op(NewHashJoin("join", cost.Python, "uid", "uid", relation.Inner), WithParallelism(4))
	snk := w.Sink("out")
	w.Connect(u, j, 0, Broadcast())
	w.Connect(o, j, 1, RoundRobin())
	w.Connect(j, snk, 0, RoundRobin())
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate rejected broadcast-build + round-robin probe: %v", err)
	}
	if diags := Validate(w); len(diags) > 0 {
		t.Fatalf("standalone Validate rejected it too: %v", diags)
	}
}

func TestSortDiagsOrdersByRuleThenNode(t *testing.T) {
	diags := []Diag{
		{Rule: "WF006", ID: 4, Node: "join", Msg: "b"},
		{Rule: "WF001", ID: 7, Node: "z", Msg: "a"},
		{Rule: "WF006", ID: 2, Node: "early", Msg: "c"},
		{Rule: "WF001", ID: 7, Node: "z", Msg: "A"},
	}
	SortDiags(diags)
	want := []Diag{
		{Rule: "WF001", ID: 7, Node: "z", Msg: "A"},
		{Rule: "WF001", ID: 7, Node: "z", Msg: "a"},
		{Rule: "WF006", ID: 2, Node: "early", Msg: "c"},
		{Rule: "WF006", ID: 4, Node: "join", Msg: "b"},
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Fatalf("diag %d = %+v, want %+v", i, diags[i], want[i])
		}
	}
}

func TestRunWorkflowRejectsInvalidAfterMutation(t *testing.T) {
	// Mutators must leave the workflow re-validatable: a fused workflow
	// validates cleanly from scratch.
	outSchema := relation.MustSchema(relation.Field{Name: "x", Type: relation.Int})
	w := New("revalidate")
	src := w.Source("src", intTable(50))
	f := w.Op(NewFilter("keep", cost.Python, func(r relation.Tuple) bool { return true }))
	m := w.Op(NewMap("m", cost.Python, outSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r.MustInt(1)}}, nil
	}))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, m, 0, RoundRobin())
	w.Connect(m, snk, 0, RoundRobin())
	if err := w.Fuse(f, m); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("fused workflow fails validation: %v", err)
	}
	if ds := Validate(w); len(ds) > 0 {
		t.Fatalf("fused workflow has diagnostics: %v", ds)
	}
}
