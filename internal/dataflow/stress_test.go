package dataflow

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// TestStressWideDeepWorkflow drives a deliberately hostile graph —
// fan-out, two parallel hash joins fed by a shared upstream, a
// parallel group-by and a union — with maximum parallelism everywhere,
// and checks the result against direct evaluation. Run with -race to
// exercise the engine's synchronization.
func TestStressWideDeepWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const rows = 20000
	s := relation.MustSchema(
		relation.Field{Name: "k", Type: relation.Int},
		relation.Field{Name: "v", Type: relation.Int},
	)
	in := relation.NewTable(s)
	for i := 0; i < rows; i++ {
		in.AppendUnchecked(relation.Tuple{int64(i % 97), int64(i)})
	}

	w := New("stress")
	src := w.Source("src", in, WithBatchSize(64))

	// Branch A: filter then reduce.
	fa := w.Op(NewFilter("even-v", cost.Python, func(r relation.Tuple) bool {
		return r.MustInt(1)%2 == 0
	}), WithParallelism(8))
	w.Connect(src, fa, 0, RoundRobin())
	ga := w.Op(NewGroupBy("sum-by-k", cost.Python, []string{"k"},
		[]relation.Aggregate{{Func: relation.Sum, Field: "v", As: "s"}}), WithParallelism(8))
	w.Connect(fa, ga, 0, HashPartition("k"))

	// Branch B: self-join of two projections of the reduced stream.
	pa := w.Op(NewMap("tag-a", cost.Python, relation.MustSchema(
		relation.Field{Name: "k", Type: relation.Int},
		relation.Field{Name: "s", Type: relation.Float},
	), func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r.MustInt(0), r.MustFloat(1)}}, nil
	}), WithParallelism(4))
	w.Connect(ga, pa, 0, RoundRobin())
	pb := w.Op(NewMap("tag-b", cost.Python, relation.MustSchema(
		relation.Field{Name: "k", Type: relation.Int},
		relation.Field{Name: "t", Type: relation.Float},
	), func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r.MustInt(0), r.MustFloat(1) * 2}}, nil
	}), WithParallelism(4))
	w.Connect(ga, pb, 0, RoundRobin())

	j := w.Op(NewHashJoin("self-join", cost.Python, "k", "k", relation.Inner), WithParallelism(8))
	w.Connect(pa, j, 0, HashPartition("k"))
	w.Connect(pb, j, 1, HashPartition("k"))

	snk := w.Sink("out")
	w.Connect(j, snk, 0, RoundRobin())

	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Direct evaluation of the same plan.
	filtered := relation.Filter(in, func(r relation.Tuple) bool { return r.MustInt(1)%2 == 0 })
	grouped, err := relation.GroupBy(filtered, []string{"k"}, []relation.Aggregate{{Func: relation.Sum, Field: "v", As: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	ta, err := relation.Map(grouped, relation.MustSchema(
		relation.Field{Name: "k", Type: relation.Int},
		relation.Field{Name: "s", Type: relation.Float},
	), func(r relation.Tuple) (relation.Tuple, error) {
		return relation.Tuple{r.MustInt(0), r.MustFloat(1)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := relation.Map(grouped, relation.MustSchema(
		relation.Field{Name: "k", Type: relation.Int},
		relation.Field{Name: "t", Type: relation.Float},
	), func(r relation.Tuple) (relation.Tuple, error) {
		return relation.Tuple{r.MustInt(0), r.MustFloat(1) * 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.HashJoin(tb, ta, "k", "k", relation.Inner)
	if err != nil {
		t.Fatal(err)
	}
	// The engine joins probe (tag-b on port 1) against build (tag-a on
	// port 0): probe columns first.
	if !res.Tables["out"].EqualUnordered(want) {
		t.Fatalf("stress output mismatch: engine %d rows, direct %d rows\nengine schema: %s\ndirect schema: %s",
			res.Tables["out"].Len(), want.Len(), res.Tables["out"].Schema(), want.Schema())
	}
	if res.Tables["out"].Len() != 97 {
		t.Fatalf("expected 97 joined groups, got %d", res.Tables["out"].Len())
	}
}

// TestStressRepeatedRuns re-executes the same workflow many times to
// shake out lifecycle races (goroutine leaks would eventually fail
// queue pushes or deadlock).
func TestStressRepeatedRuns(t *testing.T) {
	in := intTable(2000)
	for i := 0; i < 25; i++ {
		w := New(fmt.Sprintf("rep-%d", i))
		src := w.Source("src", in, WithBatchSize(32))
		f := w.Op(NewFilter("f", cost.Python, func(r relation.Tuple) bool {
			return r.MustInt(1) < 7
		}), WithParallelism(4))
		snk := w.Sink("out")
		w.Connect(src, f, 0, RoundRobin())
		w.Connect(f, snk, 0, RoundRobin())
		res, err := w.Run(context.Background(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tables["out"].Len() != 1400 {
			t.Fatalf("run %d: rows = %d", i, res.Tables["out"].Len())
		}
	}
}
