package dataflow

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

func TestTimelineShowsPipelineOverlap(t *testing.T) {
	in := intTable(5000)
	w := New("tl")
	src := w.Source("src", in)
	op1 := NewMap("stage-a", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{r}, nil
	})
	op1.Work = cost.Work{Interp: 1e-3}
	a := w.Op(op1)
	op2 := NewMap("stage-b", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{r}, nil
	})
	op2.Work = cost.Work{Interp: 1e-3}
	b := w.Op(op2)
	snk := w.Sink("out")
	w.Connect(src, a, 0, RoundRobin())
	w.Connect(a, b, 0, RoundRobin())
	w.Connect(b, snk, 0, RoundRobin())

	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	spans, err := Timeline(res.Trace, cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OpSpan{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.Finish < s.Start {
			t.Fatalf("inverted span %+v", s)
		}
	}
	sa, ok1 := byName["stage-a"]
	sb, ok2 := byName["stage-b"]
	if !ok1 || !ok2 {
		t.Fatalf("stages missing from timeline: %v", spans)
	}
	// Pipelining: stage-b starts before stage-a finishes.
	if sb.Start >= sa.Finish {
		t.Fatalf("no overlap: a=%+v b=%+v", sa, sb)
	}
}

func TestRenderTimeline(t *testing.T) {
	out := RenderTimeline([]OpSpan{
		{Name: "src", Start: 0, Finish: 2},
		{Name: "op", Start: 1, Finish: 4},
	}, 40)
	if !strings.Contains(out, "src") || !strings.Contains(out, "█") {
		t.Fatalf("render:\n%s", out)
	}
	if RenderTimeline(nil, 40) != "(empty timeline)\n" {
		t.Fatal("empty timeline render wrong")
	}
	// Degenerate zero-length spans still draw a cell.
	out = RenderTimeline([]OpSpan{{Name: "x", Start: 0, Finish: 0}}, 40)
	if !strings.Contains(out, "█") {
		t.Fatalf("zero span render:\n%s", out)
	}
}

func TestTimelineErrors(t *testing.T) {
	if _, err := Timeline(nil, cost.Default()); err == nil {
		t.Fatal("expected error for nil trace")
	}
}
