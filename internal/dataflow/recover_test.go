package dataflow

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/shard"
)

// faultWorkflow builds a small source → filter → sink pipeline, fresh
// per call so runs are independent.
func faultWorkflow() (*Workflow, *relation.Table) {
	in := intTable(400)
	w := New("faulty")
	src := w.Source("src", in)
	f := w.Op(NewFilter("keep", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1)%3 != 0 }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())
	return w, relation.Filter(in, func(r relation.Tuple) bool { return r.MustInt(1)%3 != 0 })
}

func TestCheckpointTaxWithoutFaults(t *testing.T) {
	w, _ := faultWorkflow()
	clean, err := w.Run(context.Background(), Config{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := faultWorkflow()
	armed, err := w2.Run(context.Background(), Config{
		BatchSize: 16,
		Faults:    faults.Plan{CheckpointEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if armed.Recovery == nil {
		t.Fatal("armed run has no recovery info")
	}
	if armed.Recovery.Checkpoints == 0 || armed.Recovery.CheckpointWriteSeconds <= 0 {
		t.Fatalf("checkpointing not costed: %+v", armed.Recovery)
	}
	if armed.Recovery.Kills != 0 {
		t.Fatalf("kills without injection: %+v", armed.Recovery)
	}
	// The write tax must show up as a longer simulated run.
	if armed.SimSeconds <= clean.SimSeconds {
		t.Fatalf("checkpoint tax missing: armed %v <= clean %v", armed.SimSeconds, clean.SimSeconds)
	}
	// And the data must be untouched.
	if !armed.Tables["out"].Equal(clean.Tables["out"]) {
		t.Fatal("checkpointing changed the output table")
	}
}

func TestZeroFaultPlanAddsNothing(t *testing.T) {
	w, _ := faultWorkflow()
	clean, err := w.Run(context.Background(), Config{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := faultWorkflow()
	zero, err := w2.Run(context.Background(), Config{BatchSize: 16, Faults: faults.Plan{}})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Recovery != nil {
		t.Fatalf("zero plan produced recovery info: %+v", zero.Recovery)
	}
	if zero.SimSeconds != clean.SimSeconds {
		t.Fatalf("zero plan changed sim time: %v vs %v", zero.SimSeconds, clean.SimSeconds)
	}
}

func TestFaultInjectionDeterministicAndDigestPreserving(t *testing.T) {
	plan := faults.Plan{Seed: 5, Rate: 300, NodeFraction: 0.3, CheckpointEvery: 4}
	run := func() *Result {
		w, _ := faultWorkflow()
		res, err := w.Run(context.Background(), Config{BatchSize: 16, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SimSeconds != b.SimSeconds {
		t.Fatalf("faulty runs differ: %v vs %v", a.SimSeconds, b.SimSeconds)
	}
	if *a.Recovery != *b.Recovery {
		t.Fatalf("recovery differs: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.Recovery.Kills == 0 {
		t.Fatalf("expected kills at rate 300/100s: %+v", a.Recovery)
	}
	if a.Recovery.DelaySeconds <= 0 {
		t.Fatalf("kills without respawn cost: %+v", a.Recovery)
	}
	w, want := faultWorkflow()
	clean, err := w.Run(context.Background(), Config{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Tables["out"].Equal(clean.Tables["out"]) || !a.Tables["out"].Equal(want) {
		t.Fatal("faults changed the output table")
	}
	if a.SimSeconds <= clean.SimSeconds {
		t.Fatalf("faulty run not slower: %v <= %v", a.SimSeconds, clean.SimSeconds)
	}
}

func TestKilledBatchJobPaysRestore(t *testing.T) {
	// A synthetic trace whose single operator has long batch jobs, so a
	// mid-run fault is guaranteed to kill one and charge a checkpoint
	// restore.
	tr := &Trace{
		Workflow: "restore",
		Nodes: []NodeTrace{
			{ID: 0, Name: "src", Kind: "source", Parallelism: 1, EmittedBatches: 4, WorkByPort: []cost.Work{{Interp: 0.4}}},
			{ID: 1, Name: "op", Kind: "operator", Parallelism: 1, WorkByPort: []cost.Work{{Interp: 400}}},
		},
		Edges: []EdgeTrace{{From: 0, To: 1, Port: 0, Batches: 4, Tuples: 4000, Bytes: 40 << 20}},
	}
	m := cost.Default()
	jobs, pools, meta, err := lowerWithMeta(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	// Rate 2/100s over a ~400s horizon lands several faults inside the
	// 100-second batch jobs.
	sched, info, err := scheduleWithFaults(jobs, pools, meta, tr, m, faults.Plan{Seed: 1, Rate: 2, CheckpointEvery: 2}, shard.Single())
	if err != nil {
		t.Fatal(err)
	}
	if info.Kills == 0 {
		t.Fatalf("no kills over a %vs horizon", sched.Makespan)
	}
	if info.RestoreSeconds <= 0 {
		t.Fatalf("killed batch jobs paid no restore: %+v", info)
	}
	if info.Checkpoints != 2+2 { // 4 batches at every=2, per node
		t.Fatalf("checkpoints = %d, want 4", info.Checkpoints)
	}
}

func TestInvalidFaultPlanRejected(t *testing.T) {
	w, _ := faultWorkflow()
	_, err := w.Run(context.Background(), Config{Faults: faults.Plan{Rate: -1}})
	if err == nil {
		t.Fatal("negative fault rate accepted")
	}
}

func TestCheckpointNow(t *testing.T) {
	w, _ := faultWorkflow()
	ex, err := w.Start(context.Background(), Config{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	cp := ex.CheckpointNow()
	if ex.Paused() {
		t.Fatal("CheckpointNow left the execution paused")
	}
	if len(cp.Nodes) != 3 {
		t.Fatalf("checkpoint nodes = %d, want 3", len(cp.Nodes))
	}
	if cp.TotalBytes < sourceStateBytes {
		t.Fatalf("total bytes = %d", cp.TotalBytes)
	}
	if cp.WriteSeconds <= 0 {
		t.Fatalf("write seconds = %v", cp.WriteSeconds)
	}
	if _, err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	// A caller-paused execution stays paused.
	ex2, err := faultWorkflowStart(t)
	if err != nil {
		t.Fatal(err)
	}
	ex2.Pause()
	ex2.CheckpointNow()
	if !ex2.Paused() {
		t.Fatal("CheckpointNow resumed a caller-paused execution")
	}
	ex2.Resume()
	if _, err := ex2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func faultWorkflowStart(t *testing.T) (*Execution, error) {
	t.Helper()
	w, _ := faultWorkflow()
	return w.Start(context.Background(), Config{BatchSize: 16})
}
