package dataflow

import (
	"context"
	"sync"

	"repro/internal/relation"
)

// batchMsg is one batch of rows flowing along an edge.
type batchMsg struct {
	rows []relation.Tuple
}

// queue is an unbounded MPSC queue of batches. Unbounded buffering
// keeps diamond-shaped DAGs deadlock-free: a producer never blocks on a
// slow consumer, which matters when one operator feeds both the build
// and probe side of a downstream join.
//
// Storage is a ring buffer over buf: head indexes the oldest element,
// count is the number queued. Pop is O(1), popped slots are zeroed so
// consumed batches become collectable immediately (the earlier
// `items = items[1:]` reslicing kept every popped batch reachable
// through the backing array), and steady-state push/pop reuses the
// same storage instead of perpetually appending.
type queue struct {
	mu     sync.Mutex
	buf    []batchMsg
	head   int
	count  int
	closed bool
	signal chan struct{} // capacity 1; a token means "state changed"
}

func newQueue() *queue {
	return &queue{signal: make(chan struct{}, 1)}
}

// grow doubles the ring (min 8 slots), unrolling it to index 0.
// Callers hold q.mu.
func (q *queue) grow() {
	capacity := 2 * len(q.buf)
	if capacity < 8 {
		capacity = 8
	}
	buf := make([]batchMsg, capacity)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

func (q *queue) notify() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// push enqueues a batch. Pushing to a closed queue panics — it would
// indicate an executor sequencing bug.
func (q *queue) push(m batchMsg) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("dataflow: push to closed queue")
	}
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = m
	q.count++
	q.mu.Unlock()
	q.notify()
}

// Depth returns the number of queued batches. It takes the queue lock,
// so it is safe against concurrent producers — instrumentation must use
// this instead of reading the ring-buffer indices directly, which
// races under -race.
func (q *queue) Depth() int {
	q.mu.Lock()
	n := q.count
	q.mu.Unlock()
	return n
}

// close marks the end of the stream.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notify()
}

// pop dequeues the next batch. ok is false when the queue is closed
// and drained, or when ctx is done (err distinguishes the two).
func (q *queue) pop(ctx context.Context) (m batchMsg, ok bool, err error) {
	for {
		q.mu.Lock()
		if q.count > 0 {
			m = q.buf[q.head]
			q.buf[q.head] = batchMsg{} // release the batch for GC
			q.head = (q.head + 1) % len(q.buf)
			q.count--
			remaining := q.count > 0
			q.mu.Unlock()
			if remaining {
				q.notify() // keep the signal alive for queued items
			}
			return m, true, nil
		}
		if q.closed {
			q.mu.Unlock()
			return batchMsg{}, false, nil
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return batchMsg{}, false, ctx.Err()
		case <-q.signal:
		}
	}
}

// gate implements cooperative pause/resume. Workers call wait between
// batches; Pause makes them block until Resume.
type gate struct {
	mu   sync.Mutex
	open chan struct{} // closed channel = gate open
}

func newGate() *gate {
	g := &gate{}
	ch := make(chan struct{})
	close(ch)
	g.open = ch
	return g
}

func (g *gate) pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.open:
		// Currently open: replace with a blocking channel.
		g.open = make(chan struct{})
	default:
		// Already paused.
	}
}

func (g *gate) resume() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.open:
		// Already open.
	default:
		close(g.open)
	}
}

func (g *gate) paused() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.open:
		return false
	default:
		return true
	}
}

// wait blocks while the gate is paused; it returns ctx.Err() if the
// context ends first.
func (g *gate) wait(ctx context.Context) error {
	for {
		g.mu.Lock()
		ch := g.open
		g.mu.Unlock()
		select {
		case <-ch:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
