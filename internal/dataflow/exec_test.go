package dataflow

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/relation"
)

func runSimple(t *testing.T, w *Workflow) *Result {
	t.Helper()
	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExecFilterPipeline(t *testing.T) {
	in := intTable(500)
	w := New("filter")
	src := w.Source("src", in)
	f := w.Op(NewFilter("keep-even", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1)%2 == 0 }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())

	res := runSimple(t, w)
	want := relation.Filter(in, func(r relation.Tuple) bool { return r.MustInt(1)%2 == 0 })
	if !res.Tables["out"].Equal(want) {
		t.Fatalf("output mismatch: got %d rows, want %d", res.Tables["out"].Len(), want.Len())
	}
	if res.SimSeconds <= 0 {
		t.Fatalf("sim time = %v", res.SimSeconds)
	}
}

func TestExecProjectAndMap(t *testing.T) {
	in := intTable(100)
	outSchema := relation.MustSchema(relation.Field{Name: "double", Type: relation.Int})
	w := New("projmap")
	src := w.Source("src", in)
	p := w.Op(NewProject("proj", cost.Python, "v"))
	m := w.Op(NewMap("double", cost.Python, outSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{{r.MustInt(0) * 2}}, nil
	}))
	snk := w.Sink("out")
	w.Connect(src, p, 0, RoundRobin())
	w.Connect(p, m, 0, RoundRobin())
	w.Connect(m, snk, 0, RoundRobin())

	res := runSimple(t, w)
	out := res.Tables["out"]
	if out.Len() != 100 {
		t.Fatalf("rows = %d", out.Len())
	}
	for i, r := range out.Rows() {
		if r.MustInt(0) != int64((i%10)*2) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func joinInputs() (*relation.Table, *relation.Table) {
	us := relation.MustSchema(relation.Field{Name: "uid", Type: relation.Int}, relation.Field{Name: "name", Type: relation.String})
	users := relation.NewTable(us)
	for i := 0; i < 50; i++ {
		users.AppendUnchecked(relation.Tuple{int64(i), fmt.Sprintf("user%d", i)})
	}
	os := relation.MustSchema(relation.Field{Name: "oid", Type: relation.Int}, relation.Field{Name: "uid", Type: relation.Int})
	orders := relation.NewTable(os)
	for i := 0; i < 300; i++ {
		orders.AppendUnchecked(relation.Tuple{int64(i), int64(i % 60)}) // some dangling
	}
	return users, orders
}

func joinOracle(t *testing.T, users, orders *relation.Table) *relation.Table {
	t.Helper()
	want, err := relation.HashJoin(orders, users, "uid", "uid", relation.Inner)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestExecHashJoin(t *testing.T) {
	users, orders := joinInputs()
	w := New("join")
	u := w.Source("users", users)
	o := w.Source("orders", orders)
	j := w.Op(NewHashJoin("join", cost.Python, "uid", "uid", relation.Inner))
	snk := w.Sink("out")
	w.Connect(u, j, 0, RoundRobin()) // build
	w.Connect(o, j, 1, RoundRobin()) // probe
	w.Connect(j, snk, 0, RoundRobin())

	res := runSimple(t, w)
	if !res.Tables["out"].EqualUnordered(joinOracle(t, users, orders)) {
		t.Fatal("join output mismatch")
	}
}

func TestExecParallelHashJoin(t *testing.T) {
	users, orders := joinInputs()
	w := New("pjoin")
	u := w.Source("users", users)
	o := w.Source("orders", orders)
	j := w.Op(NewHashJoin("join", cost.Python, "uid", "uid", relation.Inner), WithParallelism(4))
	snk := w.Sink("out")
	w.Connect(u, j, 0, HashPartition("uid"))
	w.Connect(o, j, 1, HashPartition("uid"))
	w.Connect(j, snk, 0, RoundRobin())

	res := runSimple(t, w)
	if !res.Tables["out"].EqualUnordered(joinOracle(t, users, orders)) {
		t.Fatal("parallel join output mismatch")
	}
}

func TestExecBroadcastBuildJoin(t *testing.T) {
	users, orders := joinInputs()
	w := New("bjoin")
	u := w.Source("users", users)
	o := w.Source("orders", orders)
	j := w.Op(NewHashJoin("join", cost.Python, "uid", "uid", relation.Inner), WithParallelism(3))
	snk := w.Sink("out")
	w.Connect(u, j, 0, Broadcast())
	w.Connect(o, j, 1, HashPartition("uid"))
	w.Connect(j, snk, 0, RoundRobin())

	res := runSimple(t, w)
	if !res.Tables["out"].EqualUnordered(joinOracle(t, users, orders)) {
		t.Fatal("broadcast-build join output mismatch")
	}
}

func TestExecParallelGroupBy(t *testing.T) {
	in := intTable(1000)
	w := New("group")
	src := w.Source("src", in)
	g := w.Op(NewGroupBy("g", cost.Python, []string{"v"}, []relation.Aggregate{{Func: relation.Count, As: "n"}}), WithParallelism(4))
	snk := w.Sink("out")
	w.Connect(src, g, 0, HashPartition("v"))
	w.Connect(g, snk, 0, RoundRobin())

	res := runSimple(t, w)
	want, err := relation.GroupBy(in, []string{"v"}, []relation.Aggregate{{Func: relation.Count, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tables["out"].EqualUnordered(want) {
		t.Fatal("group-by output mismatch")
	}
}

func TestExecSort(t *testing.T) {
	in := intTable(200)
	w := New("sort")
	src := w.Source("src", in)
	s := w.Op(NewSort("sort", cost.Python, "v", "id"))
	snk := w.Sink("out")
	w.Connect(src, s, 0, RoundRobin())
	w.Connect(s, snk, 0, RoundRobin())

	res := runSimple(t, w)
	out := res.Tables["out"]
	if out.Len() != 200 {
		t.Fatalf("rows = %d", out.Len())
	}
	for i := 1; i < out.Len(); i++ {
		a, b := out.Row(i-1), out.Row(i)
		if a.MustInt(1) > b.MustInt(1) || (a.MustInt(1) == b.MustInt(1) && a.MustInt(0) > b.MustInt(0)) {
			t.Fatalf("rows %d,%d out of order: %v %v", i-1, i, a, b)
		}
	}
}

func TestExecLimit(t *testing.T) {
	in := intTable(500)
	w := New("limit")
	src := w.Source("src", in)
	l := w.Op(NewLimit("limit", cost.Python, 42))
	snk := w.Sink("out")
	w.Connect(src, l, 0, RoundRobin())
	w.Connect(l, snk, 0, RoundRobin())
	res := runSimple(t, w)
	if res.Tables["out"].Len() != 42 {
		t.Fatalf("limit rows = %d", res.Tables["out"].Len())
	}
}

func TestExecOperatorErrorAttribution(t *testing.T) {
	in := intTable(100)
	w := New("err")
	src := w.Source("src", in)
	m := w.Op(NewMap("exploder", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
		if r.MustInt(0) == 57 {
			return nil, errors.New("synthetic failure")
		}
		return []relation.Tuple{r}, nil
	}))
	snk := w.Sink("out")
	w.Connect(src, m, 0, RoundRobin())
	w.Connect(m, snk, 0, RoundRobin())

	_, err := w.Run(context.Background(), Config{})
	if err == nil {
		t.Fatal("expected error")
	}
	var opErr *OpError
	if !errors.As(err, &opErr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if opErr.Op != "exploder" {
		t.Fatalf("error attributed to %q", opErr.Op)
	}
}

func TestExecDiamondDAGNoDeadlock(t *testing.T) {
	// One source feeds both the build and probe side of a join — the
	// shape that deadlocks engines with bounded channels.
	in := intTable(400)
	w := New("diamond")
	src := w.Source("src", in)
	a := w.Op(NewProject("left", cost.Python, "id", "v"))
	b := w.Op(NewProject("right", cost.Python, "id", "v"))
	j := w.Op(NewHashJoin("selfjoin", cost.Python, "id", "id", relation.Inner))
	snk := w.Sink("out")
	w.Connect(src, a, 0, RoundRobin())
	w.Connect(src, b, 0, RoundRobin())
	w.Connect(a, j, 0, RoundRobin())
	w.Connect(b, j, 1, RoundRobin())
	w.Connect(j, snk, 0, RoundRobin())

	done := make(chan *Result, 1)
	go func() {
		res, err := w.Run(context.Background(), Config{})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res != nil && res.Tables["out"].Len() != 400 {
			t.Fatalf("self join rows = %d, want 400", res.Tables["out"].Len())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("diamond DAG deadlocked")
	}
}

func TestExecProgressAndStates(t *testing.T) {
	in := intTable(300)
	w := New("progress")
	src := w.Source("src", in)
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())

	ex, err := w.Start(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ex.Progress() {
		if p.State != Completed {
			t.Fatalf("node %s state = %s, want completed", p.Name, p.State)
		}
	}
	var filterProg *OpProgress
	for i := range ex.Progress() {
		p := ex.Progress()[i]
		if p.Name == "f" {
			filterProg = &p
		}
	}
	if filterProg == nil || filterProg.InTuples != 300 || filterProg.OutTuples != 300 {
		t.Fatalf("filter progress = %+v", filterProg)
	}
}

func TestExecPauseResume(t *testing.T) {
	in := intTable(5000)
	w := New("pause")
	src := w.Source("src", in, WithBatchSize(10))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())

	ex, err := w.Start(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ex.Pause()
	if !ex.Paused() {
		t.Fatal("execution should report paused")
	}
	// While paused, counters must stop moving.
	time.Sleep(20 * time.Millisecond)
	before := ex.Progress()
	time.Sleep(30 * time.Millisecond)
	after := ex.Progress()
	for i := range before {
		if before[i].InTuples != after[i].InTuples {
			t.Fatalf("node %s progressed while paused", before[i].Name)
		}
	}
	ex.Resume()
	res, err := ex.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables["out"].Len() != 5000 {
		t.Fatalf("rows = %d", res.Tables["out"].Len())
	}
}

func TestExecContextCancel(t *testing.T) {
	in := intTable(100000)
	w := New("cancel")
	src := w.Source("src", in, WithBatchSize(8))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())

	ctx, cancel := context.WithCancel(context.Background())
	ex, err := w.Start(ctx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ex.Pause() // park the workers so cancel races are deterministic
	cancel()
	done := make(chan struct{})
	go func() {
		ex.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("execution did not stop on cancel")
	}
}

func TestExecTraceCounters(t *testing.T) {
	in := intTable(1000)
	w := New("trace")
	src := w.Source("src", in)
	f := w.Op(NewFilter("half", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1) < 5 }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())

	res := runSimple(t, w)
	var srcTrace, fTrace *NodeTrace
	for i := range res.Trace.Nodes {
		switch res.Trace.Nodes[i].Name {
		case "src":
			srcTrace = &res.Trace.Nodes[i]
		case "half":
			fTrace = &res.Trace.Nodes[i]
		}
	}
	if srcTrace == nil || fTrace == nil {
		t.Fatal("traces missing")
	}
	if srcTrace.OutTuples != 1000 {
		t.Fatalf("source out = %d", srcTrace.OutTuples)
	}
	if fTrace.InTuples != 1000 || fTrace.OutTuples != 500 {
		t.Fatalf("filter in/out = %d/%d", fTrace.InTuples, fTrace.OutTuples)
	}
	if len(res.Trace.Edges) != 2 {
		t.Fatalf("edges = %d", len(res.Trace.Edges))
	}
	for _, e := range res.Trace.Edges {
		if e.Bytes <= 0 || e.Batches <= 0 {
			t.Fatalf("edge stats = %+v", e)
		}
	}
	tw := fTrace.TotalWork()
	if tw.Interp <= 0 {
		t.Fatal("filter charged no work")
	}
}

func TestExecMoreWorkersFaster(t *testing.T) {
	// Large enough that per-tuple work dominates the fixed startup and
	// submission overheads.
	in := intTable(100000)
	build := func(workers int) float64 {
		w := New("scale")
		src := w.Source("src", in)
		op := NewMap("work", cost.Python, in.Schema(), func(r relation.Tuple) ([]relation.Tuple, error) {
			return []relation.Tuple{r}, nil
		})
		op.Work = cost.Work{Interp: 100e-6} // make the map the bottleneck
		m := w.Op(op, WithParallelism(workers))
		snk := w.Sink("out")
		w.Connect(src, m, 0, RoundRobin())
		w.Connect(m, snk, 0, RoundRobin())
		res := runSimple(t, w)
		return res.SimSeconds
	}
	t1 := build(1)
	t4 := build(4)
	if t4 >= t1 {
		t.Fatalf("4 workers (%v) not faster than 1 (%v)", t4, t1)
	}
	if t4 > t1/2 {
		t.Fatalf("4 workers (%v) should be well under half of 1 worker (%v)", t4, t1)
	}
}

func TestExecPipeliningBeatsFusedSingleOperator(t *testing.T) {
	// The Figure 12b mechanism: the same total work split across a
	// chain of operators finishes sooner than fused into one operator,
	// because stages overlap.
	in := intTable(20000)
	perTuple := cost.Work{Interp: 30e-6}
	passthrough := func(r relation.Tuple) ([]relation.Tuple, error) {
		return []relation.Tuple{r}, nil
	}
	fused := func() float64 {
		w := New("fused")
		src := w.Source("src", in)
		op := NewMap("all", cost.Python, in.Schema(), passthrough)
		op.Work = perTuple.Scale(3)
		m := w.Op(op)
		snk := w.Sink("out")
		w.Connect(src, m, 0, RoundRobin())
		w.Connect(m, snk, 0, RoundRobin())
		return runSimple(t, w).SimSeconds
	}()
	split := func() float64 {
		w := New("split")
		src := w.Source("src", in)
		prev := src
		for i := 0; i < 3; i++ {
			op := NewMap(fmt.Sprintf("stage%d", i), cost.Python, in.Schema(), passthrough)
			op.Work = perTuple
			m := w.Op(op)
			w.Connect(prev, m, 0, RoundRobin())
			prev = m
		}
		snk := w.Sink("out")
		w.Connect(prev, snk, 0, RoundRobin())
		return runSimple(t, w).SimSeconds
	}()
	if split >= fused {
		t.Fatalf("pipelined chain (%v) should beat fused operator (%v)", split, fused)
	}
}

func TestAutoBatchSize(t *testing.T) {
	if AutoBatchSize(0) != 1 {
		t.Fatal("empty table batch size")
	}
	if AutoBatchSize(100) != 1 {
		t.Fatalf("small table batch = %d", AutoBatchSize(100))
	}
	if AutoBatchSize(1_000_000) != 2048 {
		t.Fatalf("huge table batch = %d", AutoBatchSize(1_000_000))
	}
	mid := AutoBatchSize(96 * 100)
	if mid != 100 {
		t.Fatalf("mid table batch = %d", mid)
	}
}

func TestClusterBoundsParallelism(t *testing.T) {
	in := intTable(100)
	build := func(workers int) *Workflow {
		w := New("bounded")
		src := w.Source("src", in)
		f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }), WithParallelism(workers))
		snk := w.Sink("out")
		w.Connect(src, f, 0, RoundRobin())
		w.Connect(f, snk, 0, RoundRobin())
		return w
	}
	topo := cluster.Paper() // 32 worker vCPUs
	if _, err := build(8).Run(context.Background(), Config{Cluster: topo}); err != nil {
		t.Fatal(err)
	}
	if _, err := build(64).Run(context.Background(), Config{Cluster: topo}); err == nil {
		t.Fatal("expected error for parallelism beyond the cluster's vCPUs")
	}
	if _, err := build(1).Run(context.Background(), Config{Cluster: &cluster.Cluster{}}); err == nil {
		t.Fatal("expected error for invalid cluster")
	}
}
