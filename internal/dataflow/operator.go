// Package dataflow implements the GUI-workflow paradigm's execution
// engine — a stand-in for Texera. A workflow is a directed acyclic
// graph of operators connected by edges that carry batches of tuples.
// The engine executes operators with configurable per-operator worker
// parallelism, pipelines batches between operators, tracks per-operator
// progress (input/output tuple counts and operator states, as in the
// paper's Figure 9), supports pause and resume, attributes failures to
// the operator that raised them, and records a cost trace that is
// lowered onto the discrete-event simulator to obtain the simulated
// cluster execution time.
package dataflow

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/relation"
)

// State is the lifecycle state of an operator, mirroring the states
// Texera displays in its GUI.
type State int32

const (
	// Uninitialized means execution has not begun.
	Uninitialized State = iota
	// Initializing means workers are being started.
	Initializing
	// Running means at least one worker is processing batches.
	Running
	// Paused means the execution has been paused by the user.
	Paused
	// Completed means all input was consumed and the operator closed.
	Completed
	// Failed means the operator raised an error.
	Failed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Uninitialized:
		return "uninitialized"
	case Initializing:
		return "initializing"
	case Running:
		return "running"
	case Paused:
		return "paused"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Desc describes an operator's static properties.
type Desc struct {
	// Name labels the operator in progress reports and error traces.
	Name string
	// Language the operator is implemented in; drives CPU cost scaling
	// and serde boundaries.
	Language cost.Language
	// Ports is the number of input ports (0 for none; sources are
	// separate node kinds).
	Ports int
	// BlockingPorts flags ports that must be fully consumed before the
	// operator emits anything downstream (for example a hash join's
	// build port, or the single port of a sort). Length must equal
	// Ports.
	BlockingPorts []bool
	// Stateless declares that instances carry no state across batches:
	// the rows emitted for a batch depend only on that batch (and the
	// schema), never on earlier input or emission order. The optimizer
	// relies on this flag to fuse operators and raise parallelism; a
	// false value is always safe, a wrong true value is not.
	Stateless bool
}

// Validate checks the descriptor.
func (d Desc) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("dataflow: operator with empty name")
	}
	if d.Ports < 1 {
		return fmt.Errorf("dataflow: operator %q has %d ports", d.Name, d.Ports)
	}
	if len(d.BlockingPorts) != d.Ports {
		return fmt.Errorf("dataflow: operator %q: BlockingPorts length %d != Ports %d", d.Name, len(d.BlockingPorts), d.Ports)
	}
	return nil
}

// FullyBlocking reports whether every port is blocking — such an
// operator emits only when it closes.
func (d Desc) FullyBlocking() bool {
	for _, b := range d.BlockingPorts {
		if !b {
			return false
		}
	}
	return d.Ports > 0
}

// ExecCtx is passed to operator instances so they can attribute
// simulated work to themselves and know which worker they are.
type ExecCtx interface {
	// AddWork charges simulated CPU work (in Python-second units) to
	// the operator; the engine converts it using the operator's
	// language and distributes it over the operator's batch jobs when
	// lowering to the simulator.
	AddWork(w cost.Work)
	// Worker returns this instance's worker index in [0, parallelism).
	Worker() int
	// Workers returns the operator's configured parallelism; instances
	// use it to size internal data structures (e.g. join partitions).
	Workers() int
}

// Operator is a logical operator: a descriptor, a schema rule, and a
// factory for per-worker instances.
type Operator interface {
	// Desc returns the operator's static description.
	Desc() Desc
	// OutputSchema derives the output schema from the input schemas
	// (one per port). It is called during workflow validation.
	OutputSchema(inputs []*relation.Schema) (*relation.Schema, error)
	// NewInstance creates one worker's processing state.
	NewInstance() Instance
}

// Instance is the per-worker processing state of an operator.
// The engine guarantees that ports are delivered in ascending order:
// all batches (and the EndPort call) of port p happen before any batch
// of port p+1.
type Instance interface {
	// Open prepares the instance before any input arrives.
	Open(ec ExecCtx) error
	// Process consumes one batch from a port and returns output rows
	// (possibly none).
	Process(ec ExecCtx, port int, rows []relation.Tuple) ([]relation.Tuple, error)
	// EndPort signals that a port is exhausted; it may emit rows (for
	// example a blocking aggregation emits its groups when its only
	// port ends).
	EndPort(ec ExecCtx, port int) ([]relation.Tuple, error)
	// Close releases resources after all ports have ended.
	Close(ec ExecCtx) error
}

// Partitioning decides how an edge distributes producer batches among
// the consumer's workers.
type Partitioning struct {
	kind partKind
	key  string
}

type partKind int

const (
	partRoundRobin partKind = iota
	partHash
	partBroadcast
)

// RoundRobin distributes batches to consumer workers in turn.
func RoundRobin() Partitioning { return Partitioning{kind: partRoundRobin} }

// HashPartition splits each batch's rows by a hash of the named field
// so that equal keys always reach the same worker — required for
// parallel stateful operators such as joins and group-bys.
func HashPartition(field string) Partitioning {
	return Partitioning{kind: partHash, key: field}
}

// Broadcast copies every batch to every consumer worker.
func Broadcast() Partitioning { return Partitioning{kind: partBroadcast} }

// String renders the partitioning for diagnostics.
func (p Partitioning) String() string {
	switch p.kind {
	case partHash:
		return "hash(" + p.key + ")"
	case partBroadcast:
		return "broadcast"
	default:
		return "round-robin"
	}
}

// OpError attributes a failure to one operator — the workflow
// paradigm's operator-level error reporting (paper Aspect #1).
type OpError struct {
	Op     string // operator name
	Worker int    // worker index, -1 when not applicable
	Port   int    // input port, -1 when not applicable
	Err    error
}

// Error renders the operator-level trace line.
func (e *OpError) Error() string {
	if e.Worker >= 0 {
		return fmt.Sprintf("operator %q (worker %d, port %d): %v", e.Op, e.Worker, e.Port, e.Err)
	}
	return fmt.Sprintf("operator %q: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying error.
func (e *OpError) Unwrap() error { return e.Err }
