package dataflow

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
)

// Operator-level unit tests exercising the schema rules directly,
// without spinning up an execution.

var intSchema = relation.MustSchema(
	relation.Field{Name: "id", Type: relation.Int},
	relation.Field{Name: "v", Type: relation.Int},
)

func TestOutputSchemaArityChecks(t *testing.T) {
	ops := []Operator{
		NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }),
		NewProject("p", cost.Python, "id"),
		NewMap("m", cost.Python, intSchema, nil),
		NewGroupBy("g", cost.Python, []string{"v"}, []relation.Aggregate{{Func: relation.Count, As: "n"}}),
		NewSort("s", cost.Python, "v"),
		NewLimit("l", cost.Python, 5),
	}
	for _, op := range ops {
		if _, err := op.OutputSchema(nil); err == nil {
			t.Errorf("%s: expected error for no inputs", op.Desc().Name)
		}
		if _, err := op.OutputSchema([]*relation.Schema{nil}); err == nil {
			t.Errorf("%s: expected error for nil input schema", op.Desc().Name)
		}
		if _, err := op.OutputSchema([]*relation.Schema{intSchema, intSchema}); err == nil {
			t.Errorf("%s: expected error for two inputs", op.Desc().Name)
		}
	}
	j := NewHashJoin("j", cost.Python, "id", "id", relation.Inner)
	if _, err := j.OutputSchema([]*relation.Schema{intSchema}); err == nil {
		t.Error("join: expected error for one input")
	}
	if _, err := j.OutputSchema([]*relation.Schema{intSchema, nil}); err == nil {
		t.Error("join: expected error for nil input")
	}
	u := NewUnion("u", cost.Python)
	if _, err := u.OutputSchema([]*relation.Schema{intSchema}); err == nil {
		t.Error("union: expected error for one input")
	}
}

func TestFilterSchemaPassThrough(t *testing.T) {
	f := NewFilter("f", cost.Python, func(relation.Tuple) bool { return true })
	s, err := f.OutputSchema([]*relation.Schema{intSchema})
	if err != nil || !s.Equal(intSchema) {
		t.Fatalf("filter schema: %v %v", s, err)
	}
}

func TestProjectSchemaErrors(t *testing.T) {
	p := NewProject("p", cost.Python, "missing")
	if _, err := p.OutputSchema([]*relation.Schema{intSchema}); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestJoinSchemaKeyErrors(t *testing.T) {
	j := NewHashJoin("j", cost.Python, "missing", "id", relation.Inner)
	if _, err := j.OutputSchema([]*relation.Schema{intSchema, intSchema}); err == nil {
		t.Fatal("expected error for unknown build key")
	}
	other := relation.MustSchema(relation.Field{Name: "id", Type: relation.String})
	j2 := NewHashJoin("j2", cost.Python, "id", "id", relation.Inner)
	if _, err := j2.OutputSchema([]*relation.Schema{other, intSchema}); err == nil {
		t.Fatal("expected error for key type mismatch")
	}
}

func TestGroupBySchemaErrors(t *testing.T) {
	g := NewGroupBy("g", cost.Python, []string{"missing"}, []relation.Aggregate{{Func: relation.Count, As: "n"}})
	if _, err := g.OutputSchema([]*relation.Schema{intSchema}); err == nil {
		t.Fatal("expected error for unknown group key")
	}
}

func TestWorkflowAccessors(t *testing.T) {
	w := New("accessors")
	if w.Name() != "accessors" {
		t.Fatalf("Name() = %q", w.Name())
	}
	src := w.Source("src", intTable(3), WithScanWork(cost.Work{Interp: 1}))
	if w.OutputSchemaOf(src) != nil {
		t.Fatal("schema should be nil before validation")
	}
	if w.OutputSchemaOf(NodeID(99)) != nil {
		t.Fatal("out-of-range node should give nil schema")
	}
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.OutputSchemaOf(src) == nil {
		t.Fatal("schema missing after validation")
	}
}
