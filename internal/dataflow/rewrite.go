package dataflow

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// This file is the rewrite surface the plan optimizer (internal/planopt)
// works through: read-only views of the IR plus a small set of
// structural mutations, each of which re-arms validation so an invalid
// rewrite is caught before execution. The optimizer never touches nodes
// or edges directly — every mutation funnels through a method here that
// enforces the structural preconditions.

// IsHash reports whether the partitioning is hash-by-key.
func (p Partitioning) IsHash() bool { return p.kind == partHash }

// IsBroadcast reports whether the partitioning copies every batch to
// every worker.
func (p Partitioning) IsBroadcast() bool { return p.kind == partBroadcast }

// IsRoundRobin reports whether the partitioning deals batches to
// workers in turn.
func (p Partitioning) IsRoundRobin() bool { return p.kind == partRoundRobin }

// Key returns the hash key field ("" unless hash-partitioned).
func (p Partitioning) Key() string { return p.key }

// EdgeInfo is the exported, read-only view of one edge.
type EdgeInfo struct {
	From NodeID
	To   NodeID
	Port int
	Part Partitioning
}

// Edges returns every edge, ordered by consumer ID then port.
func (w *Workflow) Edges() []EdgeInfo {
	var out []EdgeInfo
	for _, n := range w.nodes {
		for _, e := range sortedInEdges(n) {
			out = append(out, EdgeInfo{From: e.from.id, To: n.id, Port: e.port, Part: e.part})
		}
	}
	return out
}

// InEdgesOf returns the input edges of one node, ordered by port.
func (w *Workflow) InEdgesOf(id NodeID) []EdgeInfo {
	n := w.nodeAt(id)
	if n == nil {
		return nil
	}
	var out []EdgeInfo
	for _, e := range sortedInEdges(n) {
		out = append(out, EdgeInfo{From: e.from.id, To: n.id, Port: e.port, Part: e.part})
	}
	return out
}

// OutDegreeOf returns the number of output edges of one node.
func (w *Workflow) OutDegreeOf(id NodeID) int {
	n := w.nodeAt(id)
	if n == nil {
		return 0
	}
	return len(n.outEdges)
}

func sortedInEdges(n *node) []*edge {
	es := append([]*edge(nil), n.inEdges...)
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].port < es[j-1].port; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	return es
}

func (w *Workflow) nodeAt(id NodeID) *node {
	if int(id) < 0 || int(id) >= len(w.nodes) {
		return nil
	}
	return w.nodes[id]
}

// TopoIDs returns the node IDs in topological order.
func (w *Workflow) TopoIDs() ([]NodeID, error) {
	order, err := w.topoOrder()
	if err != nil {
		return nil, err
	}
	ids := make([]NodeID, len(order))
	for i, n := range order {
		ids[i] = n.id
	}
	return ids, nil
}

// NumNodes returns the total node count (sources, operators, sinks).
func (w *Workflow) NumNodes() int { return len(w.nodes) }

// NameOf returns a node's display name ("" for an unknown ID).
func (w *Workflow) NameOf(id NodeID) string {
	n := w.nodeAt(id)
	if n == nil {
		return ""
	}
	return n.name
}

// IsSource reports whether the node is a table-scan source.
func (w *Workflow) IsSource(id NodeID) bool {
	n := w.nodeAt(id)
	return n != nil && n.kind == kindSource
}

// IsSink reports whether the node is a result sink.
func (w *Workflow) IsSink(id NodeID) bool {
	n := w.nodeAt(id)
	return n != nil && n.kind == kindSink
}

// OperatorAt returns the node's operator (nil for sources, sinks and
// unknown IDs).
func (w *Workflow) OperatorAt(id NodeID) Operator {
	n := w.nodeAt(id)
	if n == nil || n.kind != kindOperator {
		return nil
	}
	return n.op
}

// SourceTableAt returns a source node's backing table (nil otherwise).
func (w *Workflow) SourceTableAt(id NodeID) *relation.Table {
	n := w.nodeAt(id)
	if n == nil || n.kind != kindSource {
		return nil
	}
	return n.table
}

// ParallelismOf returns a node's worker count (0 for unknown IDs).
func (w *Workflow) ParallelismOf(id NodeID) int {
	n := w.nodeAt(id)
	if n == nil {
		return 0
	}
	return n.parallelism
}

// BatchSizeOf returns a source's configured batch size (0 = default).
func (w *Workflow) BatchSizeOf(id NodeID) int {
	n := w.nodeAt(id)
	if n == nil {
		return 0
	}
	return n.batchSize
}

// SetParallelism changes an operator's worker count. The workflow must
// be re-validated afterwards; stateful-operator partitioning rules are
// re-checked then.
func (w *Workflow) SetParallelism(id NodeID, workers int) error {
	n := w.nodeAt(id)
	if n == nil || n.kind != kindOperator {
		return fmt.Errorf("dataflow: set parallelism: node #%d is not an operator", id)
	}
	if workers < 1 {
		return fmt.Errorf("dataflow: set parallelism: operator %q: %d workers", n.name, workers)
	}
	n.parallelism = workers
	w.validated = false
	return nil
}

// SetSourceBatch changes a source's emitted batch size (0 restores the
// workflow default / auto selection).
func (w *Workflow) SetSourceBatch(id NodeID, batch int) error {
	n := w.nodeAt(id)
	if n == nil || n.kind != kindSource {
		return fmt.Errorf("dataflow: set batch: node #%d is not a source", id)
	}
	if batch < 0 {
		return fmt.Errorf("dataflow: set batch: source %q: batch %d", n.name, batch)
	}
	n.batchSize = batch
	w.validated = false
	return nil
}

// SetEdgePartitioning replaces the partitioning of the edge into the
// given consumer port.
func (w *Workflow) SetEdgePartitioning(to NodeID, port int, part Partitioning) error {
	n := w.nodeAt(to)
	if n == nil {
		return fmt.Errorf("dataflow: set partitioning: unknown node #%d", to)
	}
	for _, e := range n.inEdges {
		if e.port == port {
			e.part = part
			e.keyPos = -1
			w.validated = false
			return nil
		}
	}
	return fmt.Errorf("dataflow: set partitioning: %q has no input edge on port %d", n.name, port)
}

// SwapJoinInputs exchanges a hash join's build and probe sides: the
// port-0 and port-1 edges trade ports and the operator's keys swap. A
// column permutation is installed on the operator so its output keeps
// the pre-swap schema and column order — downstream operators are
// unaffected. Output row order follows the new probe side (the old
// build input), so the rewrite preserves the output as a multiset, not
// as a sequence. Inner joins only: a left-outer join's unmatched-row
// semantics are not symmetric.
func (w *Workflow) SwapJoinInputs(id NodeID) error {
	n := w.nodeAt(id)
	if n == nil || n.kind != kindOperator {
		return fmt.Errorf("dataflow: swap join: node #%d is not an operator", id)
	}
	op, ok := n.op.(*HashJoinOp)
	if !ok {
		return fmt.Errorf("dataflow: swap join: %q is not a hash join", n.name)
	}
	if op.Kind != relation.Inner {
		return fmt.Errorf("dataflow: swap join: %q is not an inner join", n.name)
	}
	if op.outPerm != nil {
		return fmt.Errorf("dataflow: swap join: %q already swapped", n.name)
	}
	if len(n.inEdges) != 2 {
		return fmt.Errorf("dataflow: swap join: %q has %d input edges", n.name, len(n.inEdges))
	}
	if err := w.Validate(); err != nil {
		return err
	}
	var buildEdge, probeEdge *edge
	for _, e := range n.inEdges {
		if e.port == 0 {
			buildEdge = e
		} else {
			probeEdge = e
		}
	}
	build, probe := buildEdge.from.schema, probeEdge.from.schema
	orig, err := op.OutputSchema([]*relation.Schema{build, probe})
	if err != nil {
		return fmt.Errorf("dataflow: swap join: %w", err)
	}
	bk := build.IndexOf(op.BuildKey)
	pk := probe.IndexOf(op.ProbeKey)
	if bk < 0 || pk < 0 {
		return fmt.Errorf("dataflow: swap join: %q: key not in input schema", n.name)
	}
	// Pre-swap physical layout: probe columns, then build columns minus
	// the build key. Post-swap: build columns, then probe columns minus
	// the probe key. perm[k] is the post-swap position of the pre-swap
	// column k; the probe-key column is read from the (equal-valued)
	// build-key column, which is what makes inner equi-joins the only
	// eligible kind.
	np, nb := probe.Len(), build.Len()
	perm := make([]int, orig.Len())
	for k := range perm {
		if k < np {
			switch {
			case k == pk:
				perm[k] = bk
			case k < pk:
				perm[k] = nb + k
			default:
				perm[k] = nb + k - 1
			}
			continue
		}
		j := k - np
		if j >= bk {
			j++
		}
		perm[k] = j
	}
	op.outSchema = orig
	op.outPerm = perm
	op.BuildKey, op.ProbeKey = op.ProbeKey, op.BuildKey
	buildEdge.port, probeEdge.port = 1, 0
	w.validated = false
	return nil
}

// SwapAdjacentUnary reorders two adjacent unary operators a -> b into
// b -> a, re-wiring prev -> b -> a -> next. All three edges must be
// round-robin (hash keys could dangle against the re-ordered schemas)
// and both operators unary with a single consumer. The caller is
// responsible for semantic safety — this method only checks structure.
func (w *Workflow) SwapAdjacentUnary(a, b NodeID) error {
	na, nb := w.nodeAt(a), w.nodeAt(b)
	if na == nil || nb == nil || na.kind != kindOperator || nb.kind != kindOperator {
		return fmt.Errorf("dataflow: swap unary: #%d and #%d must both be operators", a, b)
	}
	if na.op.Desc().Ports != 1 || nb.op.Desc().Ports != 1 {
		return fmt.Errorf("dataflow: swap unary: %q and %q must both be unary", na.name, nb.name)
	}
	if len(na.outEdges) != 1 || na.outEdges[0].to != nb {
		return fmt.Errorf("dataflow: swap unary: %q does not feed %q alone", na.name, nb.name)
	}
	if len(nb.outEdges) != 1 || len(na.inEdges) != 1 || len(nb.inEdges) != 1 {
		return fmt.Errorf("dataflow: swap unary: %q -> %q is not a simple chain", na.name, nb.name)
	}
	prev, mid, next := na.inEdges[0], na.outEdges[0], nb.outEdges[0]
	for _, e := range []*edge{prev, mid, next} {
		if e.part.kind != partRoundRobin {
			return fmt.Errorf("dataflow: swap unary: edge %q->%q is %s, not round-robin", e.from.name, e.to.name, e.part)
		}
	}
	prev.to = nb
	mid.from, mid.to = nb, na
	next.from = na
	na.inEdges[0], na.outEdges[0] = mid, next
	nb.inEdges[0], nb.outEdges[0] = prev, mid
	for _, e := range []*edge{prev, mid, next} {
		e.keyPos = -1
	}
	w.validated = false
	return nil
}

// mergeSignatures folds two rev=<int> signatures into one so the fused
// node's lineage fingerprint still moves when either half is revised.
func mergeSignatures(a, b string) string {
	ra, oka := strings.CutPrefix(a, "rev=")
	rb, okb := strings.CutPrefix(b, "rev=")
	switch {
	case a == "":
		return b
	case b == "":
		return a
	case oka && okb:
		na, erra := strconv.Atoi(ra)
		nb, errb := strconv.Atoi(rb)
		if erra == nil && errb == nil {
			return fmt.Sprintf("rev=%d", na+nb)
		}
	}
	return a
}
