package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// execTelemetry bundles the recorder and the pre-registered sharded
// instruments the executor's hot path writes. It is built once at
// Start when a recorder is attached; a nil *execTelemetry is the
// telemetry-off fast path (one pointer nil-check per batch).
type execTelemetry struct {
	rec *telemetry.Recorder
	// batches/tuples count operator Process invocations and their rows
	// — deterministic, they appear in the metrics dump.
	batches *telemetry.Counter
	tuples  *telemetry.Counter
	// batchNS is the wall-clock latency of each operator invocation;
	// qDepth samples input-queue depth after each pop. Both are
	// volatile profiling instruments.
	batchNS *telemetry.Histogram
	qDepth  *telemetry.Gauge
	qHist   *telemetry.Histogram
}

// newExecTelemetry registers the execution's hot-path instruments.
func newExecTelemetry(rec *telemetry.Recorder, wf string) *execTelemetry {
	if rec == nil {
		return nil
	}
	reg := rec.Metrics
	p := "wf." + wf + "."
	return &execTelemetry{
		rec:     rec,
		batches: reg.Counter(p + "exec.batches"),
		tuples:  reg.Counter(p + "exec.tuples"),
		batchNS: reg.Histogram(p+"exec.batch_wall", "ns"),
		qDepth:  reg.Gauge(p + "exec.queue_depth"),
		qHist:   reg.Histogram(p+"exec.queue_depth_dist", "batches"),
	}
}

// wallShard is one worker's private wall-clock accumulator, padded
// like the work shards; it is written with plain stores by its owning
// worker and merged after the node's WaitGroup completes.
type wallShard struct {
	firstNS int64
	lastNS  int64
	busyNS  int64
	batches int64
	_       [32]byte
}

// note records one invocation's wall interval on a shard.
func (sh *wallShard) note(t0, t1 int64) {
	if sh.batches == 0 || t0 < sh.firstNS {
		sh.firstNS = t0
	}
	if t1 > sh.lastNS {
		sh.lastNS = t1
	}
	sh.busyNS += t1 - t0
	sh.batches++
}

// shardIndex spreads (node, worker) pairs over the registry's shards.
func shardIndex(node NodeID, worker int) int {
	return int(node)*7 + worker
}

// trackCat labels a node's spans for export.
func trackCat(kind nodeKind) string {
	switch kind {
	case kindSource:
		return "source"
	case kindSink:
		return "sink"
	default:
		return "operator"
	}
}

// recordTelemetry converts the finished execution into telemetry:
// per-invocation spans with virtual-clock stamps from the schedule,
// per-node wall spans from the live wall shards, deterministic
// per-edge and per-node counters, and a critical-path breakdown.
func (ex *Execution) recordTelemetry(jobs []sim.Job, sched *sim.Result) {
	tel := ex.tel
	if tel == nil {
		return
	}
	proc := "workflow:" + ex.wf.name
	reg := tel.rec.Metrics
	prefix := "wf." + ex.wf.name + "."

	// Pool name -> (track, category).
	type trackInfo struct {
		track string
		cat   string
	}
	tracks := map[string]trackInfo{"controller": {"controller", "control"}}
	for _, rt := range ex.rts {
		pool := fmt.Sprintf("n%d:%s", rt.n.id, rt.n.name)
		tracks[pool] = trackInfo{rt.n.name, trackCat(rt.n.kind)}
	}

	// Virtual spans, one per scheduled job that consumed time. Jobs are
	// iterated in ID order, so the recording order is deterministic.
	// Capacity covers the wall spans too, so the slice is allocated
	// exactly once.
	nWall := 0
	for _, rt := range ex.rts {
		for w := range rt.wall {
			if rt.wall[w].batches > 0 {
				nWall++
			}
		}
	}
	spans := make([]telemetry.Span, 0, len(jobs)+nWall)
	for i := range jobs {
		j := &jobs[i]
		if j.Cost <= 0 {
			continue // barrier / end-of-stream bookkeeping jobs
		}
		sp, ok := sched.Spans[j.ID]
		if !ok {
			continue
		}
		ti := tracks[j.Pool]
		spans = append(spans, telemetry.Span{
			Proc: proc, Track: ti.track, Name: j.Name, Cat: ti.cat,
			HasVirt: true,
			Virtual: telemetry.Virt{Start: sp.Start, Dur: sp.Finish - sp.Start},
		})
	}

	// Aborted attempts under fault injection, tagged as recovery work:
	// the time each killed attempt held a worker slot.
	for _, ab := range sched.Aborts {
		j := &jobs[int(ab.Job)]
		ti := tracks[j.Pool]
		spans = append(spans, telemetry.Span{
			Proc: proc, Track: ti.track,
			Name:    fmt.Sprintf("%s:killed#%d", j.Name, ab.Attempt),
			Cat:     "recovery",
			HasVirt: true,
			Virtual: telemetry.Virt{Start: ab.Start, Dur: ab.Killed - ab.Start},
		})
	}

	// Per-node wall spans (volatile): busy time anchored at the node's
	// first activity, one span per active worker shard.
	for _, rt := range ex.rts {
		for w := range rt.wall {
			sh := &rt.wall[w]
			if sh.batches == 0 {
				continue
			}
			spans = append(spans, telemetry.Span{
				Proc: proc, Track: rt.n.name, Name: rt.n.name + ":wall",
				Cat: "wall", Worker: w, Tuples: sh.batches,
				HasWall: true,
				Clock:   telemetry.Wall{StartNS: sh.firstNS, DurNS: sh.busyNS},
			})
		}
	}
	tel.rec.Record(spans...)

	// Deterministic data-volume counters, per node and per edge.
	for _, rt := range ex.rts {
		node := prefix + "node." + rt.n.name + "."
		reg.Counter(node+"in_tuples").Add(0, rt.inTuples.Load())
		reg.Counter(node+"out_tuples").Add(0, rt.outTuples.Load())
		reg.Counter(node+"batches").Add(0, rt.batches.Load())
		if ex.lin != nil && ex.lin.mode[rt.n.id] != lmDirty {
			reg.Counter(node+"lineage_hit").Add(0, 1)
		}
		for i, e := range rt.n.outEdges {
			st := rt.edgeStats[i]
			edge := fmt.Sprintf("%sedge.%s->%s.p%d.", prefix, e.from.name, e.to.name, e.port)
			reg.Counter(edge+"batches").Add(0, st.batches.Load())
			reg.Counter(edge+"tuples").Add(0, st.tuples.Load())
			reg.Counter(edge+"bytes").Add(0, st.bytes.Load())
		}
	}

	// Critical-path breakdown: walk the longest chain and attribute its
	// time per track.
	if chain, err := sim.CriticalChain(jobs); err == nil {
		byID := make(map[sim.JobID]*sim.Job, len(jobs))
		for i := range jobs {
			byID[jobs[i].ID] = &jobs[i]
		}
		agg := make(map[string]*telemetry.CriticalRow)
		var order []string
		for _, id := range chain {
			j := byID[id]
			track := tracks[j.Pool].track
			row, ok := agg[track]
			if !ok {
				row = &telemetry.CriticalRow{Proc: proc, Track: track}
				agg[track] = row
				order = append(order, track)
			}
			row.Jobs++
			row.Seconds += j.Cost + j.Latency
		}
		rows := make([]telemetry.CriticalRow, 0, len(order))
		for _, track := range order {
			rows = append(rows, *agg[track])
		}
		tel.rec.AddCritical(rows...)
	}

	tel.rec.SetMeta(strings.TrimSuffix(prefix, ".")+".makespan", fmt.Sprintf("%.6f", sched.Makespan))
	tel.rec.SetMeta(strings.TrimSuffix(prefix, ".")+".nodes", fmt.Sprintf("%d", len(ex.rts)))
}

// recordRecovery exports the checkpoint and fault-recovery accounting
// of an execution that ran under a fault plan.
func (ex *Execution) recordRecovery(info *RecoveryInfo) {
	tel := ex.tel
	if tel == nil || info == nil {
		return
	}
	prefix := "wf." + ex.wf.name + ".recovery."
	reg := tel.rec.Metrics
	reg.Counter(prefix+"checkpoints").Add(0, int64(info.Checkpoints))
	reg.Counter(prefix+"checkpoint_bytes").Add(0, info.CheckpointBytes)
	reg.Counter(prefix+"kills").Add(0, int64(info.Kills))
	tel.rec.SetMeta(prefix+"checkpoint_write_seconds", fmt.Sprintf("%.6f", info.CheckpointWriteSeconds))
	tel.rec.SetMeta(prefix+"lost_seconds", fmt.Sprintf("%.6f", info.LostSeconds))
	tel.rec.SetMeta(prefix+"respawn_seconds", fmt.Sprintf("%.6f", info.DelaySeconds))
	tel.rec.SetMeta(prefix+"restore_seconds", fmt.Sprintf("%.6f", info.RestoreSeconds))
}
