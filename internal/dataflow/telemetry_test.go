package dataflow

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
	"repro/internal/telemetry"
)

func telemetryWorkflow() *Workflow {
	in := intTable(400)
	w := New("teltest")
	src := w.Source("src", in)
	f := w.Op(NewFilter("keep-even", cost.Python, func(r relation.Tuple) bool { return r.MustInt(1)%2 == 0 }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())
	return w
}

func TestExecTelemetrySpansAndCounters(t *testing.T) {
	rec := telemetry.New()
	if _, err := telemetryWorkflow().Run(context.Background(), Config{Telemetry: rec}); err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans()
	var virt, wall int
	for _, sp := range spans {
		if sp.Proc != "workflow:teltest" {
			t.Fatalf("span proc = %q", sp.Proc)
		}
		if sp.HasVirt {
			virt++
		}
		if sp.HasWall {
			wall++
		}
	}
	if virt == 0 {
		t.Fatal("no virtual-clock spans recorded")
	}
	if wall == 0 {
		t.Fatal("no wall-clock spans recorded")
	}

	snap := rec.Metrics.Snapshot(true)
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	// Input had 400 rows; the filter keeps even values of column 1.
	if got := counters["wf.teltest.node.src.out_tuples"]; got != 400 {
		t.Fatalf("source out_tuples = %d, want 400", got)
	}
	if got := counters["wf.teltest.edge.src->keep-even.p0.tuples"]; got != 400 {
		t.Fatalf("edge tuples = %d, want 400", got)
	}
	if got := counters["wf.teltest.exec.tuples"]; got == 0 {
		t.Fatal("hot-path tuple counter never incremented")
	}

	if len(rec.Critical()) == 0 {
		t.Fatal("no critical-path rows recorded")
	}
	if _, ok := rec.Meta()["wf.teltest.makespan"]; !ok {
		t.Fatalf("makespan meta missing: %v", rec.Meta())
	}
}

// Two instrumented runs must export bit-equal deterministic telemetry:
// virtual spans come from the sim schedule and counters from exact data
// volumes, neither depends on goroutine interleaving.
func TestExecTelemetryDeterministic(t *testing.T) {
	export := func() ([]byte, []byte) {
		rec := telemetry.New()
		if _, err := telemetryWorkflow().Run(context.Background(), Config{Telemetry: rec}); err != nil {
			t.Fatal(err)
		}
		var trace, metrics bytes.Buffer
		if err := rec.WriteChromeTrace(&trace, telemetry.ExportOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteMetrics(&metrics, false); err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), metrics.Bytes()
	}
	t1, m1 := export()
	t2, m2 := export()
	if !bytes.Equal(t1, t2) {
		t.Fatal("Chrome traces from identical runs differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics dumps from identical runs differ")
	}
	if !strings.Contains(string(t1), "keep-even") {
		t.Fatal("trace missing operator track")
	}
}
