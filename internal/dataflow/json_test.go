package dataflow

import (
	"context"
	"testing"

	"repro/internal/relation"
)

const demoSpec = `{
  "name": "demo",
  "operators": [
    {"id": "people", "type": "source",
     "schema": [{"name": "name", "type": "string"}, {"name": "age", "type": "int"}, {"name": "city", "type": "string"}],
     "data": [["ann", 34, "sf"], ["bob", 17, "la"], ["cat", 40, "sf"], ["dan", 25, "la"]]},
    {"id": "adults", "type": "filter", "condition": "age >= 21"},
    {"id": "by_city", "type": "groupby", "keys": ["city"],
     "aggregations": [{"func": "count", "as": "n"}, {"func": "avg", "field": "age", "as": "mean_age"}]},
    {"id": "out", "type": "sink"}
  ],
  "links": [
    {"from": "people", "to": "adults"},
    {"from": "adults", "to": "by_city"},
    {"from": "by_city", "to": "out"}
  ]
}`

func TestBuildAndRunSpec(t *testing.T) {
	spec, err := ParseSpec([]byte(demoSpec))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables["out"]
	if out.Len() != 2 {
		t.Fatalf("groups = %d", out.Len())
	}
	// sf: ann(34)+cat(40); la: dan(25).
	for _, r := range out.Rows() {
		switch r.MustStr(0) {
		case "sf":
			if r.MustInt(1) != 2 || r.MustFloat(2) != 37 {
				t.Fatalf("sf group = %v", r)
			}
		case "la":
			if r.MustInt(1) != 1 || r.MustFloat(2) != 25 {
				t.Fatalf("la group = %v", r)
			}
		default:
			t.Fatalf("unexpected group %v", r)
		}
	}
}

func TestSpecJoinUnionSortLimit(t *testing.T) {
	spec := `{
	  "name": "join-demo",
	  "operators": [
	    {"id": "users", "type": "source",
	     "schema": [{"name": "uid", "type": "int"}, {"name": "name", "type": "string"}],
	     "data": [[1, "ann"], [2, "bob"]]},
	    {"id": "orders", "type": "source",
	     "schema": [{"name": "oid", "type": "int"}, {"name": "uid", "type": "int"}],
	     "data": [[10, 1], [11, 2], [12, 1], [13, 9]]},
	    {"id": "j", "type": "join", "buildKey": "uid", "probeKey": "uid", "joinType": "left"},
	    {"id": "s", "type": "sort", "sortBy": ["oid"]},
	    {"id": "l", "type": "limit", "limit": 3},
	    {"id": "out", "type": "sink"}
	  ],
	  "links": [
	    {"from": "users", "to": "j", "port": 0},
	    {"from": "orders", "to": "j", "port": 1},
	    {"from": "j", "to": "s"},
	    {"from": "s", "to": "l"},
	    {"from": "l", "to": "out"}
	  ]
	}`
	s, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables["out"]
	if out.Len() != 3 {
		t.Fatalf("rows = %d", out.Len())
	}
	if out.Row(0).MustInt(0) != 10 || out.Row(0).MustStr(2) != "ann" {
		t.Fatalf("first row = %v", out.Row(0))
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","bogus":1}`)); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		`{"operators":[],"links":[]}`, // no name
		`{"name":"x","operators":[{"id":"","type":"sink"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"sink"},{"id":"a","type":"sink"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"teleport"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"source"}]}`, // no schema
		`{"name":"x","operators":[{"id":"a","type":"filter","condition":"no operator here"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"sink"}],"links":[{"from":"zz","to":"a"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"sink"}],"links":[{"from":"a","to":"zz"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"source","schema":[{"name":"v","type":"int"}],"data":[[1]]},{"id":"b","type":"sink"}],"links":[{"from":"a","to":"b","partition":"zigzag"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"source","schema":[{"name":"v","type":"int"}],"data":[[1]]},{"id":"b","type":"sink"}],"links":[{"from":"a","to":"b","partition":"hash"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"source","schema":[{"name":"v","type":"wat"}],"data":[]}]}`,
		`{"name":"x","operators":[{"id":"a","type":"source","schema":[{"name":"v","type":"int"}],"data":[[1.5]]}]}`,
		`{"name":"x","operators":[{"id":"a","type":"groupby","aggregations":[{"func":"median","as":"m"}]}]}`,
		`{"name":"x","operators":[{"id":"a","type":"join","buildKey":"k","probeKey":"k","joinType":"outer"}]}`,
		`{"name":"x","operators":[{"id":"a","type":"filter","condition":"v == 1","language":"cobol"}]}`,
	}
	for i, c := range cases {
		spec, err := ParseSpec([]byte(c))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := Build(spec); err == nil {
			t.Errorf("case %d: expected build error", i)
		}
	}
}

func TestConditionParsing(t *testing.T) {
	good := map[string]string{
		`age >= 21`:     "int",
		`price < 9.5`:   "float",
		`name == "ann"`: "string",
		`ok != true`:    "bool",
		`count <= 5`:    "int",
		`score > 0.25`:  "float",
		`city == "s f"`: "string",
		`flag == false`: "bool",
		`value != 10`:   "int",
		`delta >= -3`:   "int",
	}
	for cond := range good {
		if _, err := parseCondition(cond); err != nil {
			t.Errorf("parseCondition(%q): %v", cond, err)
		}
	}
	bad := []string{"", "age", "age >=", ">= 21", "age ~ 21", "age == zebra"}
	for _, cond := range bad {
		if _, err := parseCondition(cond); err == nil {
			t.Errorf("parseCondition(%q): expected error", cond)
		}
	}
}

func TestConditionBindTypeChecks(t *testing.T) {
	s := relation.MustSchema(
		relation.Field{Name: "age", Type: relation.Int},
		relation.Field{Name: "name", Type: relation.String},
		relation.Field{Name: "ok", Type: relation.Bool},
		relation.Field{Name: "score", Type: relation.Float},
	)
	cases := []struct {
		cond string
		ok   bool
	}{
		{`age >= 21`, true},
		{`name == "x"`, true},
		{`ok == true`, true},
		{`score < 1.5`, true},
		{`score < 1`, true},     // int literals coerce onto float columns
		{`age == "x"`, false},   // string literal on int column
		{`ok < true`, false},    // ordering on bool
		{`missing == 1`, false}, // unknown field
		{`name >= 5`, false},    // numeric on string
		{`age == 1.5`, false},   // float literal on int column is rejected at parse+bind
	}
	for _, c := range cases {
		cond, err := parseCondition(c.cond)
		if err != nil {
			if c.ok {
				t.Errorf("%q: parse failed: %v", c.cond, err)
			}
			continue
		}
		_, err = cond.bind(s)
		if (err == nil) != c.ok {
			t.Errorf("%q: bind err=%v, want ok=%v", c.cond, err, c.ok)
		}
	}
}
