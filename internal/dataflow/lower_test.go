package dataflow

import (
	"context"
	"testing"

	"repro/internal/cost"
	"repro/internal/relation"
	"repro/internal/sim"
)

func traceOf(t *testing.T, w *Workflow) *Trace {
	t.Helper()
	res, err := w.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func simpleWorkflow(t *testing.T) *Workflow {
	w := New("lower")
	src := w.Source("src", intTable(2000))
	f := w.Op(NewFilter("f", cost.Python, func(relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, RoundRobin())
	w.Connect(f, snk, 0, RoundRobin())
	return w
}

func TestLowerProducesValidSchedule(t *testing.T) {
	tr := traceOf(t, simpleWorkflow(t))
	m := cost.Default()
	jobs, pools, err := Lower(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 || len(pools) != 4 { // controller + 3 nodes
		t.Fatalf("jobs=%d pools=%d", len(jobs), len(pools))
	}
	res, err := sim.Schedule(jobs, pools)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= m.ControlOverhead {
		t.Fatalf("makespan %v should exceed the submission overhead", res.Makespan)
	}
}

func TestLowerDeterministic(t *testing.T) {
	tr := traceOf(t, simpleWorkflow(t))
	m := cost.Default()
	t1, err := SimTime(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := SimTime(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("non-deterministic sim time: %v vs %v", t1, t2)
	}
}

func TestLowerNilTrace(t *testing.T) {
	if _, _, err := Lower(nil, cost.Default()); err == nil {
		t.Fatal("expected error for nil trace")
	}
}

func TestLowerBadEdges(t *testing.T) {
	tr := &Trace{
		Nodes: []NodeTrace{{ID: 0, Name: "a"}},
		Edges: []EdgeTrace{{From: 0, To: 9}},
	}
	if _, _, err := Lower(tr, cost.Default()); err == nil {
		t.Fatal("expected error for unknown edge target")
	}
	tr2 := &Trace{
		Nodes: []NodeTrace{{ID: 0, Name: "a"}},
		Edges: []EdgeTrace{{From: 9, To: 0}},
	}
	if _, _, err := Lower(tr2, cost.Default()); err == nil {
		t.Fatal("expected error for unknown edge source")
	}
}

func TestLowerCyclicTrace(t *testing.T) {
	tr := &Trace{
		Nodes: []NodeTrace{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}},
		Edges: []EdgeTrace{{From: 0, To: 1, Batches: 1}, {From: 1, To: 0, Batches: 1}},
	}
	if _, _, err := Lower(tr, cost.Default()); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestLowerScalaCheaperThanPython(t *testing.T) {
	// Two identical traces differing only in operator language: the
	// Scala one must schedule faster when interp-bound work dominates.
	mk := func(lang cost.Language) *Trace {
		return &Trace{
			Workflow: "langs",
			Nodes: []NodeTrace{
				{ID: 0, Name: "src", Kind: "source", Parallelism: 1, EmittedBatches: 10, WorkByPort: []cost.Work{{Interp: 0.1}}},
				{ID: 1, Name: "op", Kind: "operator", Parallelism: 1, Language: lang,
					WorkByPort: []cost.Work{{Interp: 30}}, BlockingPorts: []bool{false}},
				{ID: 2, Name: "out", Kind: "sink", Parallelism: 1, WorkByPort: []cost.Work{{}}},
			},
			Edges: []EdgeTrace{
				{From: 0, To: 1, Port: 0, Batches: 10, Tuples: 1000, Bytes: 10000},
				{From: 1, To: 2, Port: 0, Batches: 10, Tuples: 1000, Bytes: 10000},
			},
		}
	}
	py, err := SimTime(mk(cost.Python), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := SimTime(mk(cost.Scala), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	if sc >= py {
		t.Fatalf("Scala (%v) should beat Python (%v)", sc, py)
	}
}

func TestLowerBlockingGatesDownstream(t *testing.T) {
	// A fully blocking middle operator forces the sink to start only
	// after all input is consumed: makespan ~= sum of stage times, not
	// max.
	mk := func(blocking bool) *Trace {
		return &Trace{
			Workflow: "blocking",
			Nodes: []NodeTrace{
				{ID: 0, Name: "src", Kind: "source", Parallelism: 1, EmittedBatches: 20, WorkByPort: []cost.Work{{Interp: 10}}},
				{ID: 1, Name: "mid", Kind: "operator", Parallelism: 1,
					WorkByPort: []cost.Work{{Interp: 10}}, BlockingPorts: []bool{blocking}, FullyBlocking: blocking},
				{ID: 2, Name: "tail", Kind: "operator", Parallelism: 1,
					WorkByPort: []cost.Work{{Interp: 10}}, BlockingPorts: []bool{false}},
				{ID: 3, Name: "out", Kind: "sink", Parallelism: 1, WorkByPort: []cost.Work{{}}},
			},
			Edges: []EdgeTrace{
				{From: 0, To: 1, Port: 0, Batches: 20, Tuples: 2000, Bytes: 1000},
				{From: 1, To: 2, Port: 0, Batches: 20, Tuples: 2000, Bytes: 1000},
				{From: 2, To: 3, Port: 0, Batches: 20, Tuples: 2000, Bytes: 1000},
			},
		}
	}
	stream, err := SimTime(mk(false), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	block, err := SimTime(mk(true), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	if block <= stream {
		t.Fatalf("blocking (%v) should be slower than streaming (%v)", block, stream)
	}
	// Streaming should approach the bottleneck stage time (10s) plus
	// pipeline fill. The blocking variant still overlaps with its own
	// upstream, but the 10s tail stage cannot start until the blocking
	// operator closes, so it lands near 10 (src∥mid) + 10 (tail).
	if stream > 15 {
		t.Fatalf("streaming makespan %v too close to sequential", stream)
	}
	if block < 20 {
		t.Fatalf("blocking makespan %v unexpectedly overlapped", block)
	}
}

func TestLowerSerdeGrowsWithOperatorCount(t *testing.T) {
	// The same data crossing more edges must spend more total time on
	// serde — Aspect #4's overhead claim. With heavy data and light
	// work, a longer chain is slower.
	mk := func(ops int) *Trace {
		tr := &Trace{Workflow: "chain"}
		tr.Nodes = append(tr.Nodes, NodeTrace{ID: 0, Name: "src", Kind: "source", Parallelism: 1, EmittedBatches: 4, WorkByPort: []cost.Work{{}}})
		const bytes = 40 << 30 // 40 GB so serde dominates
		for i := 1; i <= ops; i++ {
			tr.Nodes = append(tr.Nodes, NodeTrace{
				ID: NodeID(i), Name: "op", Kind: "operator", Parallelism: 1,
				WorkByPort: []cost.Work{{}}, BlockingPorts: []bool{false},
			})
			tr.Edges = append(tr.Edges, EdgeTrace{From: NodeID(i - 1), To: NodeID(i), Port: 0, Batches: 4, Tuples: 100, Bytes: bytes})
		}
		tr.Nodes = append(tr.Nodes, NodeTrace{ID: NodeID(ops + 1), Name: "out", Kind: "sink", Parallelism: 1, WorkByPort: []cost.Work{{}}})
		tr.Edges = append(tr.Edges, EdgeTrace{From: NodeID(ops), To: NodeID(ops + 1), Port: 0, Batches: 4, Tuples: 100, Bytes: bytes})
		return tr
	}
	t2, err := SimTime(mk(2), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	t6, err := SimTime(mk(6), cost.Default())
	if err != nil {
		t.Fatal(err)
	}
	if t6 <= t2 {
		t.Fatalf("6-op serde-bound chain (%v) should be slower than 2-op (%v)", t6, t2)
	}
}
