package dataflow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Plan-validation rule IDs. Each diagnostic Validate emits carries one
// of these, so callers (and CI) can assert on specific failures the
// way Texera's composition checker names each editor-side error.
const (
	// RuleBuilder: a builder method recorded an error while the DAG was
	// being constructed (nil operator, duplicate port, out-of-range
	// node id), or the workflow is empty.
	RuleBuilder = "WF001"
	// RuleArity: an operator input port is dangling, a sink has zero or
	// multiple inputs, or a source is unconnected.
	RuleArity = "WF002"
	// RuleCycle: the graph is not a DAG.
	RuleCycle = "WF003"
	// RuleSchema: schema inference through an operator failed (missing
	// column, key type clash across a join, wrong input shape).
	RuleSchema = "WF004"
	// RuleHashKey: a hash-partitioned edge names a key that is not in
	// the producer's output schema.
	RuleHashKey = "WF005"
	// RuleParallel: a stateful operator's parallelism violates its
	// partitioning requirements (parallel sort/limit, a parallel join
	// without hash or broadcast inputs, a parallel group-by without a
	// hash-partitioned input).
	RuleParallel = "WF006"
	// RuleSignature: a node's WithSignature string is not in the
	// "rev=<int>" format the lineage fingerprints expect.
	RuleSignature = "WF007"
	// RuleCheckpoint: a parallel operator has a blocking port fed by a
	// round-robin edge, which epoch-checkpoint recovery cannot replay
	// faithfully (the round-robin cursor is not part of the
	// checkpoint, so a restore re-deals the blocked input differently).
	RuleCheckpoint = "WF008"
)

// Diag is one plan-time diagnostic: a rule ID, the offending node
// (empty for workflow-level problems such as cycles), and a message.
type Diag struct {
	Rule string `json:"rule"`
	Node string `json:"node,omitempty"`
	ID   NodeID `json:"id"`
	Msg  string `json:"msg"`
}

func (d Diag) String() string {
	if d.Node == "" {
		return fmt.Sprintf("%s: %s", d.Rule, d.Msg)
	}
	return fmt.Sprintf("%s: node %q (#%d): %s", d.Rule, d.Node, d.ID, d.Msg)
}

// Validate statically checks a workflow plan and returns every
// diagnostic it can find, without executing anything and without
// mutating the workflow. It is the multi-error counterpart of the
// (*Workflow).Validate method the executor calls: the method stops at
// the first error and caches schemas on the nodes for execution; this
// function keeps going so a `repro -validate` run or a test can see
// the whole picture at once. A nil return means the plan is sound.
func Validate(w *Workflow) []Diag {
	if w == nil {
		return []Diag{{Rule: RuleBuilder, ID: -1, Msg: "nil workflow"}}
	}
	if w.err != nil {
		// The recorded builder error means the node/edge lists may be
		// inconsistent; report it alone rather than chasing ghosts.
		return []Diag{{Rule: RuleBuilder, ID: -1, Msg: w.err.Error()}}
	}
	if len(w.nodes) == 0 {
		return []Diag{{Rule: RuleBuilder, ID: -1, Msg: fmt.Sprintf("workflow %q is empty", w.name)}}
	}

	var diags []Diag
	report := func(rule string, n *node, msg string) {
		d := Diag{Rule: rule, ID: -1, Msg: msg}
		if n != nil {
			d.Node, d.ID = n.name, n.id
		}
		diags = append(diags, d)
	}

	// Arity: every operator port connected, sinks exactly one input,
	// sources feeding something. arityOK gates the schema pass so a
	// dangling port is reported once, not again as an inference hole.
	arityOK := make([]bool, len(w.nodes))
	for _, n := range w.nodes {
		arityOK[n.id] = true
		switch n.kind {
		case kindOperator:
			ports := n.op.Desc().Ports
			if len(n.inEdges) != ports {
				report(RuleArity, n, fmt.Sprintf("%d of %d input ports connected", len(n.inEdges), ports))
				arityOK[n.id] = false
			}
		case kindSink:
			if len(n.inEdges) != 1 {
				report(RuleArity, n, fmt.Sprintf("sink needs exactly one input, has %d", len(n.inEdges)))
				arityOK[n.id] = false
			}
		case kindSource:
			if len(n.outEdges) == 0 {
				report(RuleArity, n, "source is not connected")
			}
		}
	}

	// Signature format: the lineage layer folds signatures into node
	// fingerprints as "rev=<int>"; anything else silently reads as a
	// permanent cache miss, so flag it at plan time.
	for _, n := range w.nodes {
		if n.signature == "" {
			continue
		}
		if rev, ok := strings.CutPrefix(n.signature, "rev="); !ok || !isInt(rev) {
			report(RuleSignature, n, fmt.Sprintf("signature %q is not in rev=<int> form", n.signature))
		}
	}

	// Checkpoint compatibility: epoch checkpoints snapshot operator
	// state, not channel cursors. A blocking port must replay its
	// whole input after a restore, and with parallelism > 1 a
	// round-robin feed re-deals tuples to different workers than the
	// original run — hash or broadcast feeds are stable, round-robin
	// is not.
	for _, n := range w.nodes {
		if n.kind != kindOperator || n.parallelism <= 1 {
			continue
		}
		blocking := n.op.Desc().BlockingPorts
		for _, e := range n.inEdges {
			if e.port < len(blocking) && blocking[e.port] && e.part.kind == partRoundRobin {
				report(RuleCheckpoint, n, fmt.Sprintf(
					"blocking port %d is round-robin partitioned with parallelism %d; checkpoint replay would re-deal it (use hash or broadcast)",
					e.port, n.parallelism))
			}
		}
	}

	order, err := w.topoOrder()
	if err != nil {
		// No topological order means no schema propagation; the
		// structural diagnostics above still stand.
		report(RuleCycle, nil, err.Error())
		return diags
	}

	// Schema inference in topological order, into a side table so an
	// invalid plan leaves the workflow untouched. A node with a
	// missing input schema (upstream failure or dangling port) is
	// skipped silently — its cause is already on the list.
	schemas := make([]*relation.Schema, len(w.nodes))
	for _, n := range order {
		switch n.kind {
		case kindSource:
			schemas[n.id] = n.srcSchema
		case kindOperator:
			if !arityOK[n.id] {
				continue
			}
			in := make([]*relation.Schema, n.op.Desc().Ports)
			complete := true
			for _, e := range n.inEdges {
				in[e.port] = schemas[e.from.id]
				if in[e.port] == nil {
					complete = false
				}
			}
			if !complete {
				continue
			}
			s, err := n.op.OutputSchema(in)
			if err != nil {
				report(RuleSchema, n, err.Error())
				continue
			}
			schemas[n.id] = s
		case kindSink:
			if arityOK[n.id] {
				schemas[n.id] = schemas[n.inEdges[0].from.id]
			}
		}
	}

	// Hash keys must exist in the producer's schema, and stateful
	// operators must respect their parallel partitioning rules.
	for _, n := range w.nodes {
		for _, e := range n.inEdges {
			if e.part.kind != partHash {
				continue
			}
			ps := schemas[e.from.id]
			if ps == nil {
				continue
			}
			if ps.IndexOf(e.part.key) < 0 {
				report(RuleHashKey, n, fmt.Sprintf("edge %q->%q: hash key %q not in producer schema [%s]", e.from.name, e.to.name, e.part.key, ps))
			}
		}
		if n.kind != kindOperator || n.parallelism == 1 {
			continue
		}
		switch n.op.(type) {
		case *SortOp, *LimitOp:
			report(RuleParallel, n, fmt.Sprintf("cannot run with parallelism %d", n.parallelism))
		case *HashJoinOp:
			broadcastBuild := false
			for _, e := range n.inEdges {
				if e.port == 0 && e.part.kind == partBroadcast {
					broadcastBuild = true
				}
			}
			for _, e := range n.inEdges {
				if broadcastBuild && e.port == 1 {
					// With the build side replicated to every worker, any
					// probe partitioning joins each probe row exactly once.
					continue
				}
				if e.part.kind != partHash && !(e.port == 0 && e.part.kind == partBroadcast) {
					report(RuleParallel, n, fmt.Sprintf("parallel join requires hash-partitioned inputs (or a broadcast build side); port %d is %s", e.port, e.part))
				}
			}
		case *GroupByOp:
			if len(n.inEdges) == 1 && n.inEdges[0].part.kind != partHash {
				report(RuleParallel, n, "parallel group-by requires a hash-partitioned input")
			}
		}
	}

	SortDiags(diags)
	return diags
}

// SortDiags orders diagnostics deterministically — by rule, then node
// ID, then node name, then message — so validator and optimizer output
// is stable under golden tests and CI greps regardless of emission
// order.
func SortDiags(diags []Diag) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Msg < b.Msg
	})
}

// isInt reports whether s parses as a base-10 integer.
func isInt(s string) bool {
	_, err := strconv.Atoi(s)
	return err == nil && s != ""
}

// NumEdges returns the number of edges in the workflow graph.
func (w *Workflow) NumEdges() int {
	n := 0
	for _, nd := range w.nodes {
		n += len(nd.outEdges)
	}
	return n
}
