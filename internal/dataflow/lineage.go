package dataflow

// Lineage integration: Texera-style operator-granularity result reuse.
//
// A node's fingerprint covers the workflow identity, cost-model
// version, node name/kind/signature/parallelism, and per input port the
// *output digest* of the upstream node. Defining provenance over output
// digests (not upstream fingerprints) is what gives early cutoff: when
// an edited upstream recomputes to a bit-identical output, every
// downstream fingerprint is unchanged and the next run stops dirtying
// the DAG right below the edit.
//
// At plan time an upstream's output digest is known only if that
// upstream is itself a cache hit, so planLineage resolves fingerprints
// in topological order while all upstreams hit; the first miss makes
// the whole downstream cone dirty (its fingerprints are computed later,
// at commit time, when the freshly materialized outputs have digests).
// Each node is then assigned a mode:
//
//   - lmDirty:  cache miss — the node executes normally, its per-worker
//     output is captured, and finish() commits the materialized table as
//     a new artifact version (the commit tax lands in the node's end
//     work).
//   - lmReplay: cache hit with at least one dirty consumer — the node
//     does not execute; a single goroutine streams the cached table into
//     the dirty consumers' ports, paying the artifact fetch instead of
//     the node's recorded compute.
//   - lmSkip:   cache hit with no dirty consumer — the node is elided
//     from execution and (except for sinks, whose cached tables are
//     fetched so the run still returns complete results) from the trace.
//
// Because a hit requires every upstream to hit, all consumers of dirty
// nodes are dirty — the invariant the executor relies on: replay/skip
// nodes never receive pushes, so emit needs no filtering. All store
// reads are priced at plan time and all commits at finish time, in
// deterministic topological order, so the artifact repo's LRU and spill
// state evolve identically across runs.

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/lineage"
	"repro/internal/relation"
)

type lmMode int8

const (
	lmDirty lmMode = iota
	lmReplay
	lmSkip
)

type lineagePlan struct {
	run       *lineage.Run
	scope     string
	mode      []lmMode
	fp        []lineage.Fingerprint // resolved at plan time for hit-input nodes
	art       []*lineage.Artifact   // hit artifact per node, nil on miss
	fetchSec  []float64             // priced at plan time (replay nodes, skip sinks)
	commitSec []float64             // filled by commitLineage
}

func lineageKey(n *node) string {
	return fmt.Sprintf("node:%d:%s", n.id, n.name)
}

// nodeHasher folds everything about a node except its inputs: identity,
// configuration, cost-model version, and (for sources) the input data
// itself.
func (ex *Execution) nodeHasher(n *node, scope string) *lineage.Hasher {
	h := lineage.NewHasher().
		String(ex.wf.name).
		String(scope).
		Uint64(ex.model.Digest()).
		String(n.name).
		String(n.kind.String()).
		String(n.signature).
		Int(n.parallelism).
		Int(ex.cfg.BatchSize).
		Int(n.batchSize)
	if n.kind == kindSource {
		h.Uint64(relation.Digest(n.table))
	}
	return h
}

// foldInputs mixes the node's upstream output digests in port order.
func foldInputs(h *lineage.Hasher, n *node, digestOf func(NodeID) uint64) {
	ins := append([]*edge(nil), n.inEdges...)
	sort.Slice(ins, func(i, j int) bool { return ins[i].port < ins[j].port })
	for _, e := range ins {
		h.Int(e.port)
		h.Uint64(digestOf(e.from.id))
	}
}

// planLineage fingerprints every resolvable node, consults the store,
// and assigns execution modes. Runs single-threaded before workers
// start.
func (ex *Execution) planLineage() error {
	store := ex.cfg.Lineage
	if store == nil {
		return nil
	}
	order, err := ex.wf.topoOrder()
	if err != nil {
		return err
	}
	scope := ex.cfg.LineageScope
	if scope == "" {
		scope = "workflow:" + ex.wf.name
	}
	run := store.Begin(scope, ex.cfg.Telemetry)
	run.SetUnits(len(ex.wf.nodes))
	lin := &lineagePlan{
		run:       run,
		scope:     scope,
		mode:      make([]lmMode, len(ex.wf.nodes)),
		fp:        make([]lineage.Fingerprint, len(ex.wf.nodes)),
		art:       make([]*lineage.Artifact, len(ex.wf.nodes)),
		fetchSec:  make([]float64, len(ex.wf.nodes)),
		commitSec: make([]float64, len(ex.wf.nodes)),
	}

	// Pass 1: resolve fingerprints upstream-first while provenance is
	// known, and look them up. A node below any miss is dirty without a
	// lookup — its inputs are being recomputed, so its fingerprint only
	// exists once those outputs have digests (commit time).
	hit := make([]bool, len(ex.wf.nodes))
	for _, n := range order {
		allHit := true
		for _, e := range n.inEdges {
			if !hit[e.from.id] {
				allHit = false
				break
			}
		}
		if !allHit {
			run.MissDownstream()
			continue
		}
		h := ex.nodeHasher(n, scope)
		foldInputs(h, n, func(up NodeID) uint64 { return lin.art[up].Digest })
		fp := h.Sum()
		lin.fp[n.id] = fp
		if a := run.Lookup(lineageKey(n), fp); a != nil {
			hit[n.id] = true
			lin.art[n.id] = a
		}
	}

	// Pass 2: modes, and plan-time fetch pricing in topological order.
	for _, n := range order {
		if !hit[n.id] {
			continue
		}
		dirtyConsumer := false
		for _, e := range n.outEdges {
			if !hit[e.to.id] {
				dirtyConsumer = true
				break
			}
		}
		switch {
		case dirtyConsumer:
			lin.mode[n.id] = lmReplay
			lin.fetchSec[n.id] = run.Fetch(lin.art[n.id])
		case n.kind == kindSink:
			// Elided from execution, but the run's result tables must
			// still be complete: fetch the cached sink output.
			lin.mode[n.id] = lmSkip
			lin.fetchSec[n.id] = run.Fetch(lin.art[n.id])
		default:
			lin.mode[n.id] = lmSkip
		}
	}
	ex.lin = lin
	return nil
}

// lineageMode returns the node's execution mode (lmDirty when lineage
// is off).
func (ex *Execution) lineageMode(id NodeID) lmMode {
	if ex.lin == nil {
		return lmDirty
	}
	return ex.lin.mode[id]
}

// runReplay streams a node's cached artifact into its dirty consumers'
// edges, standing in for the node's execution.
func (ex *Execution) runReplay(rt *nodeRuntime) {
	ex.setState(rt, Running)
	art := ex.lin.art[rt.n.id]
	size := rt.n.batchSize
	if size == 0 {
		size = ex.cfg.BatchSize
	}
	if size == 0 {
		size = AutoBatchSize(art.Table.Len())
	}
	for _, b := range art.Table.Batches(size) {
		if err := ex.gate.wait(ex.ctx); err != nil {
			return
		}
		rt.outTuples.Add(int64(len(b.Rows)))
		rt.batches.Add(1)
		var bytes int64
		for _, r := range b.Rows {
			bytes += relation.EncodedSize(r)
		}
		for i, e := range rt.n.outEdges {
			if ex.lin.mode[e.to.id] != lmDirty {
				continue
			}
			st := rt.edgeStats[i]
			st.batches.Add(1)
			st.tuples.Add(int64(len(b.Rows)))
			st.bytes.Add(bytes)
			rt.edgeQ[i].push(batchMsg{rows: b.Rows})
		}
	}
	ex.setState(rt, Completed)
}

// commitLineage materializes every dirty node's output as a new
// artifact version, walking the DAG in (deterministic) topological
// order so each dirty node's fingerprint can fold the freshly computed
// output digests of its upstreams. The commit tax is recorded per node
// and folded into its end work by buildTrace.
func (ex *Execution) commitLineage() {
	lin := ex.lin
	if lin == nil {
		return
	}
	order, err := ex.wf.topoOrder()
	if err != nil {
		return // Start already validated; unreachable
	}
	outDigest := make([]uint64, len(ex.wf.nodes))
	for _, n := range order {
		if lin.mode[n.id] != lmDirty {
			outDigest[n.id] = lin.art[n.id].Digest
			continue
		}
		rt := ex.rts[n.id]
		var table *relation.Table
		switch n.kind {
		case kindSource:
			table = n.table
		case kindSink:
			table = rt.sinkTable
		default:
			table = relation.NewTable(n.schema)
			for _, rows := range rt.capture {
				for _, r := range rows {
					table.AppendUnchecked(r)
				}
			}
		}
		// Commit digests and sizes the table; the columnar backing (when
		// the table is large enough to earn one) makes both walks
		// vectorized, and later replays of the artifact inherit it.
		table.Columnarize()
		h := ex.nodeHasher(n, lin.scope)
		foldInputs(h, n, func(up NodeID) uint64 { return outDigest[up] })
		fp := h.Sum()
		lin.fp[n.id] = fp
		byPort, end, open := rt.mergedWork()
		secs := end.Seconds(n.lang()) + open.Seconds(n.lang())
		for _, w := range byPort {
			secs += w.Seconds(n.lang())
		}
		art, putSecs := lin.run.Commit(lineageKey(n), fp, table, secs)
		lin.commitSec[n.id] = putSecs
		outDigest[n.id] = art.Digest
	}
}

// lang returns the node's costing language.
func (n *node) lang() cost.Language {
	if n.kind == kindOperator {
		return n.op.Desc().Language
	}
	return cost.Python
}
