package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/sim"
)

// OpSpan is the simulated execution interval of one node: from its
// first job starting to its last job finishing.
type OpSpan struct {
	Name   string
	Start  float64
	Finish float64
}

// Timeline lowers a trace, schedules it, and aggregates the simulated
// execution interval of every node — the data behind a Gantt view of
// the workflow, which makes pipelining overlap visible.
func Timeline(tr *Trace, m *cost.Model) ([]OpSpan, error) {
	jobs, pools, err := Lower(tr, m)
	if err != nil {
		return nil, err
	}
	sched, err := sim.Schedule(jobs, pools)
	if err != nil {
		return nil, err
	}
	// Pool names encode the node: "n<ID>:<name>".
	type agg struct {
		start, finish float64
		seen          bool
	}
	byPool := map[string]*agg{}
	poolOrder := []string{}
	jobPool := map[sim.JobID]string{}
	for _, j := range jobs {
		jobPool[j.ID] = j.Pool
	}
	for _, p := range pools {
		byPool[p.Name] = &agg{}
		poolOrder = append(poolOrder, p.Name)
	}
	for id, span := range sched.Spans {
		a := byPool[jobPool[id]]
		if !a.seen || span.Start < a.start {
			a.start = span.Start
		}
		if !a.seen || span.Finish > a.finish {
			a.finish = span.Finish
		}
		a.seen = true
	}
	var out []OpSpan
	for _, name := range poolOrder {
		a := byPool[name]
		if !a.seen {
			continue
		}
		display := name
		if i := strings.Index(name, ":"); i >= 0 {
			display = name[i+1:]
		}
		out = append(out, OpSpan{Name: display, Start: a.start, Finish: a.finish})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// RenderTimeline draws the spans as an ASCII Gantt chart.
func RenderTimeline(spans []OpSpan, width int) string {
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width < 20 {
		width = 20
	}
	var maxT float64
	maxName := 0
	for _, s := range spans {
		if s.Finish > maxT {
			maxT = s.Finish
		}
		if len(s.Name) > maxName {
			maxName = len(s.Name)
		}
	}
	if maxT <= 0 {
		maxT = 1
	}
	var b strings.Builder
	for _, s := range spans {
		from := int(s.Start / maxT * float64(width))
		to := int(s.Finish / maxT * float64(width))
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("█", to-from) + strings.Repeat(" ", width-to)
		fmt.Fprintf(&b, "%-*s |%s| %7.2f .. %7.2f s\n", maxName, s.Name, bar, s.Start, s.Finish)
	}
	return b.String()
}
