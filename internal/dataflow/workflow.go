package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/relation"
)

// NodeID identifies a node within one workflow.
type NodeID int

type nodeKind int

const (
	kindSource nodeKind = iota
	kindOperator
	kindSink
)

func (k nodeKind) String() string {
	switch k {
	case kindSource:
		return "source"
	case kindOperator:
		return "operator"
	default:
		return "sink"
	}
}

type edge struct {
	from, to *node
	port     int // input port index at the consumer
	part     Partitioning
	keyPos   int // resolved hash key position in producer schema
}

type node struct {
	id          NodeID
	kind        nodeKind
	name        string
	op          Operator         // kindOperator only
	table       *relation.Table  // kindSource only
	scanWork    cost.Work        // kindSource only, per tuple
	srcSchema   *relation.Schema // kindSource only
	parallelism int
	batchSize   int    // source batch size; 0 = workflow default / auto
	signature   string // user-visible parameters, folded into lineage fingerprints
	inEdges     []*edge
	outEdges    []*edge
	schema      *relation.Schema // output schema, set by Validate
}

// Workflow is a DAG of sources, operators and sinks under
// construction. Builder methods record the first error and make
// Validate report it, so call sites can chain without checking each
// step.
type Workflow struct {
	name      string
	nodes     []*node
	err       error
	validated bool
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{name: name}
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

func (w *Workflow) fail(err error) NodeID {
	if w.err == nil {
		w.err = err
	}
	return NodeID(-1)
}

func (w *Workflow) addNode(n *node) NodeID {
	n.id = NodeID(len(w.nodes))
	w.nodes = append(w.nodes, n)
	w.validated = false
	return n.id
}

// NodeOpt configures a node at creation.
type NodeOpt func(*node)

// WithParallelism sets the number of workers executing an operator.
func WithParallelism(n int) NodeOpt {
	return func(nd *node) { nd.parallelism = n }
}

// WithBatchSize overrides the batch size a source emits.
func WithBatchSize(n int) NodeOpt {
	return func(nd *node) { nd.batchSize = n }
}

// WithSignature attaches a parameter signature to a node. The lineage
// layer folds it into the node's fingerprint, so editing an operator's
// configuration (a new signature) invalidates its cached artifact and
// the dirty suffix below it.
func WithSignature(sig string) NodeOpt {
	return func(nd *node) { nd.signature = sig }
}

// WithScanWork overrides the per-tuple cost a source charges.
func WithScanWork(w cost.Work) NodeOpt {
	return func(nd *node) { nd.scanWork = w }
}

// Source adds a table-scan source node and returns its ID. Large
// source tables gain a columnar backing here, once per graph: the
// lineage planner digests every source on every run, and joins against
// a source table probe its typed vectors directly.
func (w *Workflow) Source(name string, t *relation.Table, opts ...NodeOpt) NodeID {
	if t == nil {
		return w.fail(fmt.Errorf("dataflow: source %q has nil table", name))
	}
	t.Columnarize()
	n := &node{
		kind:        kindSource,
		name:        name,
		table:       t,
		srcSchema:   t.Schema(),
		scanWork:    DefaultScanWork,
		parallelism: 1,
	}
	for _, o := range opts {
		o(n)
	}
	if n.parallelism != 1 {
		return w.fail(fmt.Errorf("dataflow: source %q: sources run with parallelism 1", name))
	}
	return w.addNode(n)
}

// Op adds an operator node and returns its ID.
func (w *Workflow) Op(op Operator, opts ...NodeOpt) NodeID {
	if op == nil {
		return w.fail(fmt.Errorf("dataflow: nil operator"))
	}
	d := op.Desc()
	if err := d.Validate(); err != nil {
		return w.fail(err)
	}
	n := &node{kind: kindOperator, name: d.Name, op: op, parallelism: 1}
	for _, o := range opts {
		o(n)
	}
	if n.parallelism < 1 {
		return w.fail(fmt.Errorf("dataflow: operator %q: parallelism %d", d.Name, n.parallelism))
	}
	return w.addNode(n)
}

// Sink adds a result-collecting sink node and returns its ID.
func (w *Workflow) Sink(name string) NodeID {
	n := &node{kind: kindSink, name: name, parallelism: 1}
	return w.addNode(n)
}

// Connect wires from's output into to's input port with the given
// partitioning.
func (w *Workflow) Connect(from, to NodeID, port int, part Partitioning) {
	if w.err != nil {
		return
	}
	if int(from) < 0 || int(from) >= len(w.nodes) || int(to) < 0 || int(to) >= len(w.nodes) {
		w.fail(fmt.Errorf("dataflow: connect: node id out of range (%d -> %d)", from, to))
		return
	}
	f, t := w.nodes[from], w.nodes[to]
	if f.kind == kindSink {
		w.fail(fmt.Errorf("dataflow: connect: sink %q cannot produce output", f.name))
		return
	}
	if t.kind == kindSource {
		w.fail(fmt.Errorf("dataflow: connect: source %q cannot consume input", t.name))
		return
	}
	maxPort := 0
	if t.kind == kindOperator {
		maxPort = t.op.Desc().Ports - 1
	}
	if port < 0 || port > maxPort {
		w.fail(fmt.Errorf("dataflow: connect: %q has no input port %d", t.name, port))
		return
	}
	for _, e := range t.inEdges {
		if e.port == port {
			w.fail(fmt.Errorf("dataflow: connect: input port %d of %q already connected", port, t.name))
			return
		}
	}
	e := &edge{from: f, to: t, port: port, part: part, keyPos: -1}
	f.outEdges = append(f.outEdges, e)
	t.inEdges = append(t.inEdges, e)
	w.validated = false
}

// Validate checks the workflow: builder errors, dangling ports,
// cycles, schema propagation, hash-partition keys, and the
// parallelism constraints of stateful operators. It is idempotent and
// called automatically by Start.
func (w *Workflow) Validate() error {
	if w.err != nil {
		return w.err
	}
	if w.validated {
		return nil
	}
	if len(w.nodes) == 0 {
		return fmt.Errorf("dataflow: workflow %q is empty", w.name)
	}

	// Every operator port connected; sinks exactly one input.
	for _, n := range w.nodes {
		switch n.kind {
		case kindOperator:
			ports := n.op.Desc().Ports
			if len(n.inEdges) != ports {
				return fmt.Errorf("dataflow: operator %q has %d of %d input ports connected", n.name, len(n.inEdges), ports)
			}
		case kindSink:
			if len(n.inEdges) != 1 {
				return fmt.Errorf("dataflow: sink %q needs exactly one input, has %d", n.name, len(n.inEdges))
			}
			if len(n.outEdges) != 0 {
				return fmt.Errorf("dataflow: sink %q has outputs", n.name)
			}
		case kindSource:
			if len(n.outEdges) == 0 {
				return fmt.Errorf("dataflow: source %q is not connected", n.name)
			}
		}
	}

	order, err := w.topoOrder()
	if err != nil {
		return err
	}

	// Schema propagation in topological order.
	for _, n := range order {
		switch n.kind {
		case kindSource:
			n.schema = n.srcSchema
		case kindOperator:
			in := make([]*relation.Schema, n.op.Desc().Ports)
			for _, e := range n.inEdges {
				in[e.port] = e.from.schema
			}
			s, err := n.op.OutputSchema(in)
			if err != nil {
				return err
			}
			n.schema = s
		case kindSink:
			n.schema = n.inEdges[0].from.schema
		}
	}

	// Resolve hash-partition keys against producer schemas and check
	// stateful-operator parallelism rules.
	for _, n := range w.nodes {
		for _, e := range n.inEdges {
			if e.part.kind == partHash {
				p := e.from.schema.IndexOf(e.part.key)
				if p < 0 {
					return fmt.Errorf("dataflow: edge %q->%q: hash key %q not in producer schema [%s]", e.from.name, e.to.name, e.part.key, e.from.schema)
				}
				e.keyPos = p
			}
		}
		if n.kind != kindOperator || n.parallelism == 1 {
			continue
		}
		switch n.op.(type) {
		case *SortOp, *LimitOp:
			return fmt.Errorf("dataflow: operator %q cannot run with parallelism %d", n.name, n.parallelism)
		case *HashJoinOp:
			// A broadcast build side replicates the full hash table to
			// every worker, so the probe side may then use any
			// partitioning (each probe row meets the whole build side
			// exactly once wherever it lands).
			broadcastBuild := false
			for _, e := range n.inEdges {
				if e.port == 0 && e.part.kind == partBroadcast {
					broadcastBuild = true
				}
			}
			for _, e := range n.inEdges {
				if broadcastBuild && e.port == 1 {
					continue
				}
				if e.part.kind != partHash && !(e.port == 0 && e.part.kind == partBroadcast) {
					return fmt.Errorf("dataflow: parallel join %q requires hash-partitioned inputs (or a broadcast build side); port %d is %s", n.name, e.port, e.part)
				}
			}
		case *GroupByOp:
			if n.inEdges[0].part.kind != partHash {
				return fmt.Errorf("dataflow: parallel group-by %q requires a hash-partitioned input", n.name)
			}
		}
	}

	w.validated = true
	return nil
}

// topoOrder returns the nodes topologically sorted or a cycle error.
func (w *Workflow) topoOrder() ([]*node, error) {
	indeg := make([]int, len(w.nodes))
	for _, n := range w.nodes {
		indeg[n.id] = len(n.inEdges)
	}
	var queue []*node
	for _, n := range w.nodes {
		if indeg[n.id] == 0 {
			queue = append(queue, n)
		}
	}
	var order []*node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range n.outEdges {
			indeg[e.to.id]--
			if indeg[e.to.id] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	if len(order) != len(w.nodes) {
		return nil, fmt.Errorf("dataflow: workflow %q contains a cycle", w.name)
	}
	return order, nil
}

// NumOperators returns the number of operator nodes (the paper's
// operator-count metric excludes sources and sinks' view operators are
// counted as operators by Texera, so sinks are included).
func (w *Workflow) NumOperators() int {
	n := 0
	for _, nd := range w.nodes {
		if nd.kind != kindSource {
			n++
		}
	}
	return n
}

// OutputSchemaOf returns the validated output schema of a node, or nil
// before validation.
func (w *Workflow) OutputSchemaOf(id NodeID) *relation.Schema {
	if int(id) < 0 || int(id) >= len(w.nodes) {
		return nil
	}
	return w.nodes[id].schema
}

// PlanNode is the exported, read-only view of one node of a workflow
// plan — the topology the static validator checks and the EXPLAIN
// profile hangs its measurements on.
type PlanNode struct {
	ID          NodeID      `json:"id"`
	Name        string      `json:"name"`
	Kind        string      `json:"kind"` // "source", "operator", "sink"
	Parallelism int         `json:"parallelism"`
	Signature   string      `json:"signature,omitempty"`
	Inputs      []PlanInput `json:"inputs,omitempty"`
}

// PlanInput is one input edge of a plan node.
type PlanInput struct {
	From         string `json:"from"`
	FromID       NodeID `json:"from_id"`
	Port         int    `json:"port"`
	Partitioning string `json:"partitioning"`
}

// PlanNodes returns the workflow's node list in ID order, with input
// edges ordered by port then producer ID — a deterministic snapshot of
// the DAG, independent of execution.
func (w *Workflow) PlanNodes() []PlanNode {
	out := make([]PlanNode, 0, len(w.nodes))
	for _, nd := range w.nodes {
		p := nd.parallelism
		if p < 1 {
			p = 1
		}
		pn := PlanNode{
			ID:          nd.id,
			Name:        nd.name,
			Kind:        nd.kind.String(),
			Parallelism: p,
			Signature:   nd.signature,
		}
		for _, e := range nd.inEdges {
			pn.Inputs = append(pn.Inputs, PlanInput{
				From:         e.from.name,
				FromID:       e.from.id,
				Port:         e.port,
				Partitioning: e.part.String(),
			})
		}
		sort.Slice(pn.Inputs, func(i, j int) bool {
			a, b := pn.Inputs[i], pn.Inputs[j]
			if a.Port != b.Port {
				return a.Port < b.Port
			}
			return a.FromID < b.FromID
		})
		out = append(out, pn)
	}
	return out
}
