package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Env is the benchmark host fingerprint stamped into every report.
// Wall-clock numbers are only comparable between runs on the same
// machine configuration, so the regression detector refuses to compare
// reports whose fingerprints differ instead of reporting differences
// in hardware as differences in code.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// GOGC is the GC target from the environment; empty means the
	// default (100). GC pacing shifts every allocation-heavy micro.
	GOGC string `json:"gogc,omitempty"`
}

// CurrentEnv fingerprints the running process.
func CurrentEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOGC:       os.Getenv("GOGC"),
	}
}

// mismatches lists the fields on which two fingerprints disagree, in a
// fixed order. Empty means comparable.
func (e Env) mismatches(other Env) []string {
	var out []string
	add := func(field, a, b string) {
		if a != b {
			out = append(out, fmt.Sprintf("%s: %q vs %q", field, a, b))
		}
	}
	add("go_version", e.GoVersion, other.GoVersion)
	add("goos", e.GOOS, other.GOOS)
	add("goarch", e.GOARCH, other.GOARCH)
	add("gomaxprocs", strconv.Itoa(e.GOMAXPROCS), strconv.Itoa(other.GOMAXPROCS))
	add("num_cpu", strconv.Itoa(e.NumCPU), strconv.Itoa(other.NumCPU))
	add("gogc", e.GOGC, other.GOGC)
	return out
}

// legacyEnv reconstructs the fingerprint of a report written before
// the Env header existed, from its top-level fields. Only the fields
// that were recorded participate in the comparison.
func legacyEnv(r *Report, like Env) Env {
	e := like // unrecorded fields assume the comparing side's values
	e.GoVersion = r.GoVersion
	e.GOMAXPROCS = r.GOMAXPROCS
	return e
}

// reportEnv returns a report's fingerprint, synthesizing one for
// legacy reports.
func reportEnv(r *Report, like Env) Env {
	if r.Env != (Env{}) {
		return r.Env
	}
	return legacyEnv(r, like)
}

// Finding is one benchmark compared between baseline and fresh run.
type Finding struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"` // "micro" or "macro"
	Baseline  float64 `json:"baseline"`
	Fresh     float64 `json:"fresh"`
	Ratio     float64 `json:"ratio"` // fresh / baseline
	Threshold float64 `json:"threshold"`
	Regressed bool    `json:"regressed,omitempty"`
	Improved  bool    `json:"improved,omitempty"`
}

// CompareReport is the regression detector's verdict.
type CompareReport struct {
	BaselinePath string `json:"baseline_path,omitempty"`
	// EnvMismatch lists fingerprint differences; when non-empty the
	// comparison was refused and Findings is empty.
	EnvMismatch []string  `json:"env_mismatch,omitempty"`
	Findings    []Finding `json:"findings,omitempty"`
	// Missing names benchmarks present on only one side (renamed or
	// newly added) — informational, never a regression by itself.
	Missing     []string `json:"missing,omitempty"`
	Regressions int      `json:"regressions"`
}

// microThreshold is the relative slowdown tolerated per micro before
// it counts as a regression, tiered by magnitude: the faster the
// operation, the larger the share of its cost that is scheduler and
// cache noise on a busy host. The tiers come from the observed spread
// of the BENCH_1–6 series on an otherwise idle machine.
func microThreshold(baselineNS float64) float64 {
	switch {
	case baselineNS < 100:
		return 0.60
	case baselineNS < 1000:
		return 0.45
	default:
		return 0.30
	}
}

// macroThreshold is the tolerated relative slowdown for end-to-end
// macro runs; min-of-7 interleaved reps makes these steadier than any
// single micro window.
const macroThreshold = 0.35

// Compare diffs a fresh report against a baseline. It refuses (with
// EnvMismatch set) when the reports come from different machine
// fingerprints. A benchmark regresses when fresh > baseline*(1+thr);
// it improves (informationally) when fresh < baseline/(1+thr).
func Compare(baseline, fresh *Report) *CompareReport {
	out := &CompareReport{}
	fe := reportEnv(fresh, CurrentEnv())
	be := reportEnv(baseline, fe)
	if mm := be.mismatches(fe); len(mm) > 0 {
		out.EnvMismatch = mm
		return out
	}

	classify := func(name, kind string, base, got, thr float64) {
		f := Finding{
			Name: name, Kind: kind,
			Baseline: base, Fresh: got, Threshold: thr,
		}
		if base > 0 {
			f.Ratio = got / base
			f.Regressed = f.Ratio > 1+thr
			f.Improved = f.Ratio < 1/(1+thr)
		}
		if f.Regressed {
			out.Regressions++
		}
		out.Findings = append(out.Findings, f)
	}

	baseMicro := make(map[string]Micro, len(baseline.Micro))
	for _, m := range baseline.Micro {
		baseMicro[m.Name] = m
	}
	seen := make(map[string]bool)
	for _, m := range fresh.Micro {
		b, ok := baseMicro[m.Name]
		if !ok {
			out.Missing = append(out.Missing, "baseline lacks micro "+m.Name)
			continue
		}
		seen[m.Name] = true
		classify(m.Name, "micro", b.NsPerOp, m.NsPerOp, microThreshold(b.NsPerOp))
	}
	for _, m := range baseline.Micro {
		if !seen[m.Name] {
			out.Missing = append(out.Missing, "fresh run lacks micro "+m.Name)
		}
	}

	macroKey := func(m Macro) string {
		return fmt.Sprintf("%s/%s/%d", m.Task, m.Experiment, m.Size)
	}
	baseMacro := make(map[string]Macro, len(baseline.Macro))
	for _, m := range baseline.Macro {
		baseMacro[macroKey(m)] = m
	}
	seenMacro := make(map[string]bool)
	for _, m := range fresh.Macro {
		k := macroKey(m)
		b, ok := baseMacro[k]
		if !ok {
			out.Missing = append(out.Missing, "baseline lacks macro "+k)
			continue
		}
		seenMacro[k] = true
		classify(k, "macro", b.WallMS, m.WallMS, macroThreshold)
	}
	for _, m := range baseline.Macro {
		if k := macroKey(m); !seenMacro[k] {
			out.Missing = append(out.Missing, "fresh run lacks macro "+k)
		}
	}
	sort.Strings(out.Missing)
	return out
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestBaseline finds the highest-numbered BENCH_<n>.json in dir and
// loads it. It returns os.ErrNotExist when the directory holds no
// baseline.
func LatestBaseline(dir string) (string, *Report, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, best = n, e.Name()
		}
	}
	if best == "" {
		return "", nil, fmt.Errorf("bench: no BENCH_*.json baseline in %s: %w", dir, os.ErrNotExist)
	}
	path := filepath.Join(dir, best)
	rep, err := LoadReport(path)
	if err != nil {
		return "", nil, err
	}
	return path, rep, nil
}

// LoadReport reads a bench report JSON file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &rep, nil
}
