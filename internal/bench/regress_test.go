package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		GoVersion:  "go1.22.0",
		GOMAXPROCS: 4,
		Env: Env{
			GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
			GOMAXPROCS: 4, NumCPU: 4,
		},
		Micro: []Micro{
			{Name: "fast_op", NsPerOp: 50, AllocsPerOp: 0},
			{Name: "mid_op", NsPerOp: 500, AllocsPerOp: 1},
			{Name: "slow_op", NsPerOp: 50000, AllocsPerOp: 10},
		},
		Macro: []Macro{
			{Task: "dice", Experiment: "fig13a", Size: 50, WallMS: 120, SimSeconds: 33},
		},
	}
}

func TestCompareUnchangedBaselinePasses(t *testing.T) {
	base, fresh := sampleReport(), sampleReport()
	cmp := Compare(base, fresh)
	if len(cmp.EnvMismatch) != 0 {
		t.Fatalf("identical envs refused: %v", cmp.EnvMismatch)
	}
	if cmp.Regressions != 0 {
		t.Fatalf("identical reports flagged %d regressions: %+v", cmp.Regressions, cmp.Findings)
	}
	if len(cmp.Missing) != 0 {
		t.Fatalf("identical reports reported missing benchmarks: %v", cmp.Missing)
	}
}

func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	base, fresh := sampleReport(), sampleReport()
	// 2x is beyond every tier's threshold (max 60%).
	fresh.Micro[2].NsPerOp *= 2
	fresh.Macro[0].WallMS *= 2
	cmp := Compare(base, fresh)
	if cmp.Regressions != 2 {
		t.Fatalf("want 2 regressions from 2x slowdowns, got %d: %+v", cmp.Regressions, cmp.Findings)
	}
	for _, f := range cmp.Findings {
		switch f.Name {
		case "slow_op", "dice/fig13a/50":
			if !f.Regressed {
				t.Errorf("%s: 2x slowdown not flagged (ratio %.2f, thr %.2f)", f.Name, f.Ratio, f.Threshold)
			}
		default:
			if f.Regressed {
				t.Errorf("%s: unchanged benchmark flagged", f.Name)
			}
		}
	}
}

func TestCompareNoiseWithinThresholdTolerated(t *testing.T) {
	base, fresh := sampleReport(), sampleReport()
	fresh.Micro[0].NsPerOp *= 1.50 // fast tier tolerates 60%
	fresh.Micro[1].NsPerOp *= 1.40 // mid tier tolerates 45%
	fresh.Micro[2].NsPerOp *= 1.25 // slow tier tolerates 30%
	cmp := Compare(base, fresh)
	if cmp.Regressions != 0 {
		t.Fatalf("within-threshold noise flagged: %+v", cmp.Findings)
	}
}

func TestCompareRefusesCrossMachine(t *testing.T) {
	base, fresh := sampleReport(), sampleReport()
	base.Env.NumCPU = 64
	base.Env.GoVersion = "go1.21.0"
	cmp := Compare(base, fresh)
	if len(cmp.EnvMismatch) != 2 {
		t.Fatalf("want 2 mismatch reasons, got %v", cmp.EnvMismatch)
	}
	if len(cmp.Findings) != 0 {
		t.Fatalf("refused comparison still produced findings: %+v", cmp.Findings)
	}
}

func TestCompareLegacyBaselineFallsBack(t *testing.T) {
	base, fresh := sampleReport(), sampleReport()
	base.Env = Env{} // pre-Env report: only top-level fields recorded
	cmp := Compare(base, fresh)
	if len(cmp.EnvMismatch) != 0 {
		t.Fatalf("legacy baseline with matching go version/procs refused: %v", cmp.EnvMismatch)
	}
	base.GoVersion = "go1.20.0"
	cmp = Compare(base, fresh)
	if len(cmp.EnvMismatch) == 0 {
		t.Fatal("legacy baseline with different go version not refused")
	}
}

func TestCompareReportsMissingBenchmarks(t *testing.T) {
	base, fresh := sampleReport(), sampleReport()
	fresh.Micro = fresh.Micro[:2]                                        // dropped slow_op
	fresh.Micro = append(fresh.Micro, Micro{Name: "new_op", NsPerOp: 1}) // added new_op
	cmp := Compare(base, fresh)
	if cmp.Regressions != 0 {
		t.Fatalf("membership changes flagged as regressions: %+v", cmp.Findings)
	}
	if len(cmp.Missing) != 2 {
		t.Fatalf("want 2 missing notes, got %v", cmp.Missing)
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := LatestBaseline(dir); err == nil {
		t.Fatal("empty dir produced a baseline")
	}
	old := sampleReport()
	old.Micro[0].NsPerOp = 999
	write("BENCH_2.json", old)
	write("BENCH_10.json", sampleReport())
	write("BENCH_notanumber.json", sampleReport()) // ignored
	path, rep, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_10.json" {
		t.Fatalf("want BENCH_10.json (numeric ordering), got %s", path)
	}
	if rep.Micro[0].NsPerOp != 50 {
		t.Fatalf("loaded wrong baseline: %+v", rep.Micro[0])
	}
}
