package bench

import (
	"testing"

	"repro/internal/dataflow"
)

func TestMeasureReportsPerOp(t *testing.T) {
	n := 0
	m := measure("count", 10, func() { n += 10 })
	if m.Name != "count" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.NsPerOp <= 0 {
		t.Fatalf("ns/op = %v", m.NsPerOp)
	}
	if n < 30 { // warm-up + allocs sampling + at least one timed run
		t.Fatalf("function ran %d ops, expected at least 30", n)
	}
}

func TestMicrobenchLoopsRun(t *testing.T) {
	dataflow.QueuePushPopLoop(64, 4)
	dataflow.AddWorkLoop(64)
}

func TestMacrosTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("macro runs in -short mode")
	}
	mac, err := macros(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mac) == 0 {
		t.Fatal("no macro points")
	}
	for _, m := range mac {
		if m.WallMS <= 0 || m.SimSeconds <= 0 {
			t.Fatalf("degenerate macro point %+v", m)
		}
	}
}
