package bench

import (
	"testing"

	"repro/internal/dataflow"
)

func TestMeasureReportsPerOp(t *testing.T) {
	n := 0
	m := measure("count", 10, func() { n += 10 })
	if m.Name != "count" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.NsPerOp <= 0 {
		t.Fatalf("ns/op = %v", m.NsPerOp)
	}
	if n < 30 { // warm-up + allocs sampling + at least one timed run
		t.Fatalf("function ran %d ops, expected at least 30", n)
	}
}

func TestMicrobenchLoopsRun(t *testing.T) {
	dataflow.QueuePushPopLoop(64, 4)
	dataflow.AddWorkLoop(64)
}

func TestMacrosTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("macro runs in -short mode")
	}
	mac, err := macros(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mac) == 0 {
		t.Fatal("no macro points")
	}
	iterate := map[string]Macro{}
	for _, m := range mac {
		if m.WallMS <= 0 || m.SimSeconds <= 0 {
			t.Fatalf("degenerate macro point %+v", m)
		}
		if m.Experiment == "iterate-cold" || m.Experiment == "iterate-warm" {
			// The lineage pair has no telemetry variant; it compares a
			// cold run against a fully warm store instead.
			iterate[m.Experiment] = m
			continue
		}
		if m.WallMSTelemetry <= 0 {
			t.Fatalf("telemetry run missing from macro point %+v", m)
		}
	}
	cold, okc := iterate["iterate-cold"]
	warm, okw := iterate["iterate-warm"]
	if !okc || !okw {
		t.Fatalf("iterate macro pair missing: %+v", iterate)
	}
	if warm.SimSeconds >= cold.SimSeconds {
		t.Fatalf("all-hit run not cheaper in simulated seconds: warm %v vs cold %v",
			warm.SimSeconds, cold.SimSeconds)
	}
}

// The telemetry micro-benchmarks must keep running (the overhead guard
// depends on them); this exercises the same loops measure() times.
func TestTelemetryMicroLoopsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("micro sweep in -short mode")
	}
	micros := micros()
	want := map[string]bool{
		"telemetry_counter_add": false, "telemetry_hist_observe": false, "telemetry_gauge_set": false,
	}
	for _, m := range micros {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
			if m.NsPerOp <= 0 {
				t.Fatalf("%s: ns/op = %v", m.Name, m.NsPerOp)
			}
			if m.AllocsPerOp != 0 {
				t.Fatalf("%s allocates %.2f per op on the hot path", m.Name, m.AllocsPerOp)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("micro %s missing", name)
		}
	}
}
