package bench

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/relation"
)

func TestMeasureReportsPerOp(t *testing.T) {
	n := 0
	m := measure("count", 10, func() { n += 10 })
	if m.Name != "count" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.NsPerOp <= 0 {
		t.Fatalf("ns/op = %v", m.NsPerOp)
	}
	if n < 30 { // warm-up + allocs sampling + at least one timed run
		t.Fatalf("function ran %d ops, expected at least 30", n)
	}
}

func TestMicrobenchLoopsRun(t *testing.T) {
	dataflow.QueuePushPopLoop(64, 4)
	dataflow.AddWorkLoop(64)
}

func TestMacrosTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("macro runs in -short mode")
	}
	mac, err := macros(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mac) == 0 {
		t.Fatal("no macro points")
	}
	iterate := map[string]Macro{}
	colpath := map[string]Macro{}
	scale := map[string]Macro{}
	optim := map[string]Macro{}
	for _, m := range mac {
		if m.WallMS <= 0 || m.SimSeconds <= 0 {
			t.Fatalf("degenerate macro point %+v", m)
		}
		switch m.Experiment {
		case "iterate-cold", "iterate-warm":
			// The lineage pair has no telemetry variant; it compares a
			// cold run against a fully warm store instead.
			iterate[m.Experiment] = m
			continue
		case "colpath-off", "colpath-on":
			// The columnar pair compares the two engines directly.
			colpath[m.Experiment] = m
			continue
		case "scale-n1", "scale-n4":
			// The sharded pair compares cluster widths, not telemetry.
			scale[m.Experiment] = m
			continue
		case "opt-off", "opt-on":
			// The optimizer pair compares plans, not telemetry; it runs
			// once per task, so key by task too.
			optim[m.Task+"/"+m.Experiment] = m
			continue
		}
		if m.WallMSTelemetry <= 0 {
			t.Fatalf("telemetry run missing from macro point %+v", m)
		}
	}
	off, oko := colpath["colpath-off"]
	on, okn := colpath["colpath-on"]
	if !oko || !okn {
		t.Fatalf("columnar macro pair missing: %+v", colpath)
	}
	if off.SimSeconds != on.SimSeconds {
		t.Fatalf("columnar engines disagree on simulated seconds: row %v vs columnar %v",
			off.SimSeconds, on.SimSeconds)
	}
	cold, okc := iterate["iterate-cold"]
	warm, okw := iterate["iterate-warm"]
	if !okc || !okw {
		t.Fatalf("iterate macro pair missing: %+v", iterate)
	}
	if warm.SimSeconds >= cold.SimSeconds {
		t.Fatalf("all-hit run not cheaper in simulated seconds: warm %v vs cold %v",
			warm.SimSeconds, cold.SimSeconds)
	}
	n1, ok1 := scale["scale-n1"]
	n4, ok4 := scale["scale-n4"]
	if !ok1 || !ok4 {
		t.Fatalf("sharded macro pair missing: %+v", scale)
	}
	if n4.SimSeconds >= n1.SimSeconds {
		t.Fatalf("4-node cluster not faster in simulated seconds: n4 %v vs n1 %v",
			n4.SimSeconds, n1.SimSeconds)
	}
	for _, task := range []string{"dice", "gotta"} {
		oOff, okf := optim[task+"/opt-off"]
		oOn, okn := optim[task+"/opt-on"]
		if !okf || !okn {
			t.Fatalf("optimizer macro pair missing for %s: %+v", task, optim)
		}
		if oOn.SimSeconds >= oOff.SimSeconds {
			t.Fatalf("%s: optimized plan not faster in simulated seconds: on %v vs off %v",
				task, oOn.SimSeconds, oOff.SimSeconds)
		}
	}
}

// The telemetry micro-benchmarks must keep running (the overhead guard
// depends on them); this exercises the same loops measure() times.
func TestTelemetryMicroLoopsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("micro sweep in -short mode")
	}
	micros := micros()
	want := map[string]bool{
		"telemetry_counter_add": false, "telemetry_hist_observe": false, "telemetry_gauge_set": false,
	}
	for _, m := range micros {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
			if m.NsPerOp <= 0 {
				t.Fatalf("%s: ns/op = %v", m.Name, m.NsPerOp)
			}
			if m.AllocsPerOp != 0 {
				t.Fatalf("%s allocates %.2f per op on the hot path", m.Name, m.AllocsPerOp)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("micro %s missing", name)
		}
	}
}

// TestColumnarMicroSmoke runs the columnar micro-benchmark kernels at
// tiny sizes and cross-checks each against the row engine. The CI
// bench-smoke step runs exactly this test, so a broken columnar kernel
// fails the pipeline fast without paying for the full harness.
func TestColumnarMicroSmoke(t *testing.T) {
	prev := relation.SetColumnarEnabled(true)
	defer relation.SetColumnarEnabled(prev)
	left, right := joinTables(2048)
	left.Columnarize()
	right.Columnarize()
	if _, ok := left.Columnar(); !ok {
		t.Fatal("bench fixture did not gain a columnar backing")
	}

	serial, err := relation.HashJoin(left, right, "k", "k", relation.Inner)
	if err != nil {
		t.Fatal(err)
	}
	par, err := relation.HashJoinPar(left, right, "k", "k", relation.Inner, 8)
	if err != nil {
		t.Fatal(err)
	}
	relation.SetColumnarEnabled(false)
	rowJoin, err := relation.HashJoin(left, right, "k", "k", relation.Inner)
	if err != nil {
		t.Fatal(err)
	}
	rowDigest := relation.Digest(rowJoin)
	relation.SetColumnarEnabled(true)
	if d := relation.Digest(serial); d != rowDigest {
		t.Fatalf("columnar join digest %#x differs from row engine %#x", d, rowDigest)
	}
	if d := relation.Digest(par); d != rowDigest {
		t.Fatalf("partitioned columnar join digest %#x differs from row engine %#x", d, rowDigest)
	}

	enc, err := relation.EncodeTable(left)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(enc)) != relation.TableBytes(left) {
		t.Fatalf("columnar encode produced %d bytes, accounting says %d", len(enc), relation.TableBytes(left))
	}

	lc, _ := left.Columnar()
	sel, err := lc.SelectInt("k", func(v int64) bool { return v < 64 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	filtered := lc.FilterCol(sel)
	relation.SetColumnarEnabled(false)
	rowFiltered := relation.Filter(left, func(r relation.Tuple) bool { return r[0].(int64) < 64 })
	wantFilter := relation.Digest(rowFiltered)
	relation.SetColumnarEnabled(true)
	if d := relation.Digest(filtered); d != wantFilter {
		t.Fatalf("columnar filter digest %#x differs from row engine %#x", d, wantFilter)
	}

	aggs := []relation.Aggregate{
		{Func: relation.Count, As: "n"},
		{Func: relation.Sum, Field: "weight", As: "w"},
	}
	colG, err := relation.GroupBy(right, []string{"k"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	relation.SetColumnarEnabled(false)
	rowG, err := relation.GroupBy(right, []string{"k"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	wantGroup := relation.Digest(rowG)
	relation.SetColumnarEnabled(true)
	if d := relation.Digest(colG); d != wantGroup {
		t.Fatalf("columnar group-by digest %#x differs from row engine %#x", d, wantGroup)
	}
}
