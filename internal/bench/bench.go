// Package bench is the reproduction's wall-clock benchmark harness.
// Everything else in the repo measures simulated seconds; this package
// measures how long the engine itself takes on the host machine, so
// hot-path changes (queueing, work accounting, joins, serde) can be
// compared across commits. `repro -bench-json FILE` writes its report.
package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/relation"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/kge"
)

// Micro is one micro-benchmark result.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Macro is one end-to-end workflow run: wall-clock milliseconds next
// to the simulated seconds the run computed. The Size sweep per task
// is the wall-clock trajectory.
type Macro struct {
	Task       string  `json:"task"`
	Experiment string  `json:"experiment"`
	Size       int     `json:"size"`
	WallMS     float64 `json:"wall_ms"`
	SimSeconds float64 `json:"sim_seconds"`
}

// Report is the full harness output.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Micro      []Micro `json:"micro"`
	Macro      []Macro `json:"macro"`
}

// measure times f (which must perform inner operations per call) until
// the total exceeds ~100ms, then reports per-operation cost. Allocs
// are sampled separately with a single run.
func measure(name string, inner int, f func()) Micro {
	f() // warm up
	allocs := testing.AllocsPerRun(1, f) / float64(inner)
	var (
		elapsed time.Duration
		ops     int
	)
	for elapsed < 100*time.Millisecond {
		start := time.Now()
		f()
		elapsed += time.Since(start)
		ops += inner
	}
	return Micro{Name: name, NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops), AllocsPerOp: allocs}
}

func joinTables(n int) (*relation.Table, *relation.Table) {
	ls := relation.MustSchema(relation.Field{Name: "k", Type: relation.Int}, relation.Field{Name: "payload", Type: relation.String})
	rs := relation.MustSchema(relation.Field{Name: "k", Type: relation.Int}, relation.Field{Name: "weight", Type: relation.Float})
	left, right := relation.NewTable(ls), relation.NewTable(rs)
	for i := 0; i < n; i++ {
		left.AppendUnchecked(relation.Tuple{int64(i % (n / 4)), fmt.Sprintf("row-%d", i)})
		right.AppendUnchecked(relation.Tuple{int64(i % (n / 2)), float64(i)})
	}
	return left, right
}

// micros runs the hot-path micro-benchmarks.
func micros() []Micro {
	var out []Micro
	out = append(out, measure("queue_push_pop", 4096, func() {
		dataflow.QueuePushPopLoop(4096, 1)
	}))
	out = append(out, measure("queue_push_pop_burst256", 4096, func() {
		dataflow.QueuePushPopLoop(16, 256)
	}))
	out = append(out, measure("add_work", 65536, func() {
		dataflow.AddWorkLoop(65536)
	}))

	left, right := joinTables(100000)
	out = append(out, measure("hash_join_100k", 1, func() {
		if _, err := relation.HashJoin(left, right, "k", "k", relation.Inner); err != nil {
			panic(err)
		}
	}))
	out = append(out, measure("hash_join_par8_100k", 1, func() {
		if _, err := relation.HashJoinPar(left, right, "k", "k", relation.Inner, 8); err != nil {
			panic(err)
		}
	}))
	joiner, err := relation.NewJoiner(left.Schema(), right, "k", "k", relation.Inner, 1)
	if err != nil {
		panic(err)
	}
	batch := left.Rows()[:2048]
	out = append(out, measure("joiner_probe_2048", 2048, func() {
		joiner.ProbeRows(nil, batch)
	}))

	enc10k, _ := joinTables(10000)
	out = append(out, measure("encode_table_10k", 1, func() {
		if _, err := relation.EncodeTable(enc10k); err != nil {
			panic(err)
		}
	}))
	tup := relation.Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	out = append(out, measure("encode_tuple_pooled", 4096, func() {
		e := relation.GetEncoder()
		for i := 0; i < 4096; i++ {
			if _, err := e.EncodeTuple(tup); err != nil {
				panic(err)
			}
		}
		e.Release()
	}))
	return out
}

// macros runs small workflow configurations of the E4 (DICE) and E6
// (KGE) experiments and records each run's wall clock.
func macros(seed uint64) ([]Macro, error) {
	var out []Macro
	run := func(task core.Task, experiment string, size int) error {
		start := time.Now()
		res, err := task.Run(core.Workflow, core.RunConfig{})
		if err != nil {
			return fmt.Errorf("bench: %s size %d: %w", experiment, size, err)
		}
		out = append(out, Macro{
			Task: task.Name(), Experiment: experiment, Size: size,
			WallMS:     float64(time.Since(start).Microseconds()) / 1000,
			SimSeconds: res.SimSeconds,
		})
		return nil
	}
	for _, pairs := range []int{10, 50, 200} {
		t, err := dice.New(dice.Params{Pairs: pairs, Seed: seed})
		if err != nil {
			return nil, err
		}
		if err := run(t, "fig13a", pairs); err != nil {
			return nil, err
		}
	}
	for _, products := range []int{340, 3400} {
		t, err := kge.New(kge.Params{Products: products, Seed: seed})
		if err != nil {
			return nil, err
		}
		if err := run(t, "fig13c", products); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Run executes the full harness.
func Run(seed uint64) (*Report, error) {
	mac, err := macros(seed)
	if err != nil {
		return nil, err
	}
	return &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Micro:      micros(),
		Macro:      mac,
	}, nil
}
