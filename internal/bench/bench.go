// Package bench is the reproduction's wall-clock benchmark harness.
// Everything else in the repo measures simulated seconds; this package
// measures how long the engine itself takes on the host machine, so
// hot-path changes (queueing, work accounting, joins, serde) can be
// compared across commits. `repro -bench-json FILE` writes its report.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/faults"
	"repro/internal/lineage"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/tasks/dice"
	"repro/internal/tasks/gotta"
	"repro/internal/tasks/kge"
	"repro/internal/telemetry"
)

// Micro is one micro-benchmark result.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Macro is one end-to-end workflow run: wall-clock milliseconds next
// to the simulated seconds the run computed. The Size sweep per task
// is the wall-clock trajectory. Each configuration is run with and
// without a telemetry recorder attached; OverheadPct is the relative
// wall-clock cost of instrumentation (the observability tax), which
// the telemetry PR requires to stay within a few percent.
type Macro struct {
	Task            string  `json:"task"`
	Experiment      string  `json:"experiment"`
	Size            int     `json:"size"`
	WallMS          float64 `json:"wall_ms"`
	WallMSTelemetry float64 `json:"wall_ms_telemetry,omitempty"`
	OverheadPct     float64 `json:"overhead_pct,omitempty"`
	SimSeconds      float64 `json:"sim_seconds"`
}

// Report is the full harness output. GoVersion and GOMAXPROCS predate
// the Env header and stay populated so older tooling (and the
// regression detector's legacy fallback) keeps working.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Env        Env     `json:"env"`
	Micro      []Micro `json:"micro"`
	Macro      []Macro `json:"macro"`
}

// measure times f (which must perform inner operations per call) over
// three ~60ms windows and reports the median window's per-operation
// cost. Allocs are sampled separately with a single run. Two choices
// here exist for noise robustness on a shared bench host, where a
// single ~100ms mean (the BENCH_1–4 estimator) swung adjacent runs of
// the same binary by double-digit percentages: the forced collection
// before the timed windows puts every micro in the same GC regime (the
// pacer otherwise inherits whatever heap target the previous micro or
// the macro suite left behind — a skew larger than some effects being
// measured), and the median discards a window that absorbed a
// neighbor's CPU burst without hiding steady-state cost the way a
// minimum would. Windows stay long enough that a micro with a large
// live fixture amortizes whole GC mark cycles inside each window
// rather than landing one in some windows and none in others — GC
// triggered by f's own allocation belongs inside the measurement,
// evenly.
func measure(name string, inner int, f func()) Micro {
	f() // warm up
	allocs := testing.AllocsPerRun(1, f) / float64(inner)
	runtime.GC()
	const windows = 3
	perOp := make([]float64, windows)
	for w := range perOp {
		var (
			elapsed time.Duration
			ops     int
		)
		for elapsed < 60*time.Millisecond {
			start := telemetry.WallClock()
			f()
			elapsed += telemetry.WallSince(start)
			ops += inner
		}
		perOp[w] = float64(elapsed.Nanoseconds()) / float64(ops)
	}
	sort.Float64s(perOp)
	return Micro{Name: name, NsPerOp: perOp[windows/2], AllocsPerOp: allocs}
}

func joinTables(n int) (*relation.Table, *relation.Table) {
	ls := relation.MustSchema(relation.Field{Name: "k", Type: relation.Int}, relation.Field{Name: "payload", Type: relation.String})
	rs := relation.MustSchema(relation.Field{Name: "k", Type: relation.Int}, relation.Field{Name: "weight", Type: relation.Float})
	left, right := relation.NewTable(ls), relation.NewTable(rs)
	for i := 0; i < n; i++ {
		left.AppendUnchecked(relation.Tuple{int64(i % (n / 4)), fmt.Sprintf("row-%d", i)})
		right.AppendUnchecked(relation.Tuple{int64(i % (n / 2)), float64(i)})
	}
	return left, right
}

// micros runs the hot-path micro-benchmarks.
func micros() []Micro {
	var out []Micro
	out = append(out, measure("queue_push_pop", 4096, func() {
		dataflow.QueuePushPopLoop(4096, 1)
	}))
	out = append(out, measure("queue_push_pop_burst256", 4096, func() {
		dataflow.QueuePushPopLoop(16, 256)
	}))
	out = append(out, measure("add_work", 65536, func() {
		dataflow.AddWorkLoop(65536)
	}))

	// Serde and digest micros run before the 100k join fixtures exist:
	// the encode loop allocates its output buffer every call, and with
	// megabytes of fixture rows live each incremental GC spends its
	// cycles scanning unrelated tuples — measured roughly 2x on
	// encode_table_10k. The *_row variants keep the pre-columnar
	// baseline in every report, so the columnar speedup reads as an
	// ablation within one run instead of a cross-commit diff.
	enc10k, _ := joinTables(10000)
	enc10k.Columnarize()
	prevCol := relation.SetColumnarEnabled(false)
	out = append(out, measure("encode_table_10k_row", 1, func() {
		if _, err := relation.EncodeTable(enc10k); err != nil {
			panic(err)
		}
	}))
	relation.SetColumnarEnabled(true)
	out = append(out, measure("encode_table_10k", 1, func() {
		if _, err := relation.EncodeTable(enc10k); err != nil {
			panic(err)
		}
	}))
	out = append(out, measure("col_digest_10k", 1, func() {
		if relation.Digest(enc10k) == 0 {
			panic("bench: zero digest")
		}
	}))
	relation.SetColumnarEnabled(prevCol)

	// The join fixtures gain a columnar backing up front; the global
	// gate then selects which engine a call exercises.
	left, right := joinTables(100000)
	left.Columnarize()
	right.Columnarize()
	prevCol = relation.SetColumnarEnabled(false)
	out = append(out, measure("hash_join_100k_row", 1, func() {
		if _, err := relation.HashJoin(left, right, "k", "k", relation.Inner); err != nil {
			panic(err)
		}
	}))
	relation.SetColumnarEnabled(true)
	out = append(out, measure("hash_join_100k", 1, func() {
		if _, err := relation.HashJoin(left, right, "k", "k", relation.Inner); err != nil {
			panic(err)
		}
	}))
	// Sharded-join trajectory: the goroutine-per-shard probe beat the
	// serial join in BENCH_1 (47.5ms vs 53.5ms) but had regressed by
	// BENCH_4 (59.4ms vs 50.5ms) once the serial path got cheaper — on a
	// single-CPU bench machine goroutines add scheduling cost without
	// adding parallelism. The columnar joiner instead radix-partitions
	// both sides by hash and probes partition-at-a-time against
	// cache-resident tables, so the sharded number sits below the serial
	// one again on any GOMAXPROCS.
	out = append(out, measure("hash_join_par8_100k", 1, func() {
		if _, err := relation.HashJoinPar(left, right, "k", "k", relation.Inner, 8); err != nil {
			panic(err)
		}
	}))
	relation.SetColumnarEnabled(prevCol)
	joiner, err := relation.NewJoiner(left.Schema(), right, "k", "k", relation.Inner, 1)
	if err != nil {
		panic(err)
	}
	batch := left.Rows()[:2048]
	out = append(out, measure("joiner_probe_2048", 2048, func() {
		joiner.ProbeRows(nil, batch)
	}))

	// Columnar-native micros: the conversion cost call sites pay once
	// per table, and the kernels that sit under filter and group-by.
	convSrc, _ := joinTables(100000)
	out = append(out, measure("col_convert_100k", 1, func() {
		if _, ok := relation.ToColumnar(convSrc); !ok {
			panic("bench: columnar conversion failed")
		}
	}))
	lc, ok := left.Columnar()
	if !ok {
		panic("bench: join fixture lost its columnar backing")
	}
	out = append(out, measure("col_filter_100k", 1, func() {
		sel, err := lc.SelectInt("k", func(v int64) bool { return v < 12500 }, nil)
		if err != nil {
			panic(err)
		}
		if lc.FilterCol(sel).Len() == 0 {
			panic("bench: filter selected nothing")
		}
	}))
	_, groupSrc := joinTables(100000)
	groupSrc.Columnarize()
	groupAggs := []relation.Aggregate{
		{Func: relation.Count, As: "n"},
		{Func: relation.Sum, Field: "weight", As: "w"},
	}
	prevCol = relation.SetColumnarEnabled(true)
	out = append(out, measure("col_group_by_100k", 1, func() {
		res, err := relation.GroupBy(groupSrc, []string{"k"}, groupAggs)
		if err != nil {
			panic(err)
		}
		if res.Len() == 0 {
			panic("bench: group-by produced no groups")
		}
	}))
	relation.SetColumnarEnabled(prevCol)
	tup := relation.Tuple{int64(42), "a reasonably sized string payload", 3.14159, true}
	out = append(out, measure("encode_tuple_pooled", 4096, func() {
		e := relation.GetEncoder()
		for i := 0; i < 4096; i++ {
			if _, err := e.EncodeTuple(tup); err != nil {
				panic(err)
			}
		}
		e.Release()
	}))

	// Telemetry hot-path primitives: the per-batch cost an instrumented
	// executor pays on top of the work itself.
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("bench.counter")
	hist := reg.Histogram("bench.hist", "ns")
	gauge := reg.Gauge("bench.gauge")
	out = append(out, measure("telemetry_counter_add", 65536, func() {
		for i := 0; i < 65536; i++ {
			ctr.Add(i, 1)
		}
	}))
	out = append(out, measure("telemetry_hist_observe", 65536, func() {
		for i := 0; i < 65536; i++ {
			hist.Observe(i, int64(i))
		}
	}))
	out = append(out, measure("telemetry_gauge_set", 65536, func() {
		for i := 0; i < 65536; i++ {
			gauge.Set(i, int64(i))
		}
	}))

	// Recovery machinery: deterministic fault-plan expansion, then a
	// fault-injected DICE run per paradigm — the end-to-end price of
	// re-simulating the schedule with kills, backoff, and (for the
	// workflow) checkpoint/restore accounting folded in.
	out = append(out, measure("fault_plan_events_512", 512, func() {
		plan := faults.Plan{Seed: 1, Rate: 100}
		if ev := plan.Events(512); len(ev) == 0 {
			panic("bench: fault plan expanded to no events")
		}
	}))
	faultCfg := core.MustRunConfig(core.WithFaults(faults.Plan{
		Seed: 1, Rate: 50, NodeFraction: 0.25, CheckpointEvery: 4,
	}))
	for _, pc := range []struct {
		name string
		p    core.Paradigm
	}{
		{"script_run_faulty_dice10", core.Script},
		{"workflow_run_faulty_dice10", core.Workflow},
	} {
		task, err := dice.New(dice.Params{Pairs: 10, Seed: 1})
		if err != nil {
			panic(err)
		}
		cfg, p := faultCfg, pc.p
		out = append(out, measure(pc.name, 1, func() {
			if _, err := task.Run(p, cfg); err != nil {
				panic(err)
			}
		}))
	}

	// Lineage primitives: what the versioned artifact store charges per
	// unit — hashing provenance into a fingerprint, committing a fresh
	// result, and resolving a fingerprint that hits.
	out = append(out, measure("lineage_fingerprint", 4096, func() {
		for i := 0; i < 4096; i++ {
			fp := lineage.NewHasher().
				String("workflow:dice[pairs=200,seed=1,workers=4]").
				String("op:aggregate-write").
				Int(i).
				Uint64(0x9e3779b97f4a7c15).
				Sum()
			if fp == 0 {
				panic("bench: fingerprint chain hashed to zero")
			}
		}
	}))
	commitTable, _ := joinTables(1000)
	store, err := lineage.NewStore(nil, 1<<40)
	if err != nil {
		panic(err)
	}
	crun := store.Begin("bench:commit", nil)
	nextFP := lineage.Fingerprint(1)
	out = append(out, measure("lineage_commit_1k_rows", 1, func() {
		// A fresh fingerprint per call keeps every commit on the real
		// path (digest + priced put), never the already-present shortcut.
		nextFP++
		if a, _ := crun.Commit("bench-unit", nextFP, commitTable, 1); a == nil {
			panic("bench: commit returned no artifact")
		}
	}))
	hrun := store.Begin("bench:lookup", nil)
	for i := 0; i < 4096; i++ {
		hrun.CommitMeta(fmt.Sprintf("cell-%d", i), lineage.Fingerprint(1<<32+i), 0.001)
	}
	out = append(out, measure("lineage_hit_lookup", 4096, func() {
		for i := 0; i < 4096; i++ {
			if hrun.Lookup("cell", lineage.Fingerprint(1<<32+i)) == nil {
				panic("bench: expected lineage hit")
			}
		}
	}))

	// Fair-share scheduler: the per-job submit/dispatch/complete price
	// the serving tier charges on top of the run itself. Four tenants,
	// 1024 one-vCPU jobs, drained in synchronous rounds.
	out = append(out, measure("sched_submit_dispatch_1024", 1024, func() {
		sched := service.NewScheduler(service.Config{BudgetVCPUs: 32, QueueCap: 1024})
		tenants := [4]string{"a", "b", "c", "d"}
		for i := 0; i < 1024; i++ {
			if _, err := sched.Submit(service.Job{Tenant: tenants[i%4], VCPUs: 1, EstSeconds: 1}, 0); err != nil {
				panic(err)
			}
		}
		now := 0.0
		var batch []*service.Job
		for completed := 0; completed < 1024; {
			for {
				j, ok := sched.Next(now)
				if !ok {
					break
				}
				batch = append(batch, j)
			}
			now++
			for _, j := range batch {
				if err := sched.Complete(j.ID, now, 0); err != nil {
					panic(err)
				}
			}
			completed += len(batch)
			batch = batch[:0]
		}
	}))

	// Sharded-tier planning primitives: the pure per-operator cost the
	// distributed planner pays — datum-shard arithmetic and grace-spill
	// plan construction. Both run at plan time on every sharded lowering,
	// so they must stay allocation-light.
	spillModel := cost.Default()
	skew := 2.0 / shard.SpillFanout
	out = append(out, measure("shard_plan_spill", 1024, func() {
		for i := 0; i < 1024; i++ {
			state := int64(1+i%32) << 20
			p, err := shard.PlanSpill(spillModel, state, 1<<20, skew)
			if err != nil {
				panic(err)
			}
			if state > 1<<20 && !p.Spilled() {
				panic("bench: oversized state did not spill")
			}
		}
	}))
	out = append(out, measure("shard_split_owner_1k", 1024, func() {
		topo := shard.Of(16)
		for i := 0; i < 1024; i++ {
			parts := topo.Split(1000)
			sum := 0
			for _, p := range parts {
				sum += p
			}
			if sum != 1000 || topo.Owner(i%1000, 1000) < 0 {
				panic("bench: shard split/owner disagreed")
			}
		}
	}))
	return out
}

// macros runs small workflow configurations of the E4 (DICE) and E6
// (KGE) experiments, timing each with telemetry off and on. The two
// variants run interleaved in pairs; the overhead estimate is the
// median of the per-pair ratios, so slow drift in machine load (which
// hits both members of a pair equally) cancels instead of biasing the
// comparison the way independent minima would.
func macros(seed uint64) ([]Macro, error) {
	const reps = 7
	var out []Macro
	run := func(task core.Task, experiment string, size int) error {
		timeOnce := func(cfg core.RunConfig) (float64, float64, error) {
			start := telemetry.WallClock()
			res, err := task.Run(core.Workflow, cfg)
			if err != nil {
				return 0, 0, err
			}
			return float64(telemetry.WallSince(start).Microseconds()) / 1000, res.SimSeconds, nil
		}
		instrCfg := func() core.RunConfig { return core.MustRunConfig(core.WithTelemetry(telemetry.New())) }
		// Warm both variants (first runs pay one-time costs: page faults,
		// lazy init), then interleave timed reps so drift in machine load
		// hits both variants equally; keep each variant's fastest run.
		if _, _, err := timeOnce(core.MustRunConfig()); err != nil {
			return fmt.Errorf("bench: %s size %d: %w", experiment, size, err)
		}
		if _, _, err := timeOnce(instrCfg()); err != nil {
			return fmt.Errorf("bench: %s size %d (telemetry): %w", experiment, size, err)
		}
		plain, instr := -1.0, -1.0
		var sim float64
		ratios := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			pw, s, err := timeOnce(core.MustRunConfig())
			if err != nil {
				return fmt.Errorf("bench: %s size %d: %w", experiment, size, err)
			}
			if plain < 0 || pw < plain {
				plain = pw
			}
			sim = s
			iw, _, err := timeOnce(instrCfg())
			if err != nil {
				return fmt.Errorf("bench: %s size %d (telemetry): %w", experiment, size, err)
			}
			if instr < 0 || iw < instr {
				instr = iw
			}
			if pw > 0 {
				ratios = append(ratios, iw/pw)
			}
		}
		overhead := 0.0
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			overhead = 100 * (ratios[len(ratios)/2] - 1)
		}
		out = append(out, Macro{
			Task: task.Name(), Experiment: experiment, Size: size,
			WallMS: plain, WallMSTelemetry: instr, OverheadPct: overhead,
			SimSeconds: sim,
		})
		return nil
	}
	for _, pairs := range []int{10, 50, 200} {
		t, err := dice.New(dice.Params{Pairs: pairs, Seed: seed})
		if err != nil {
			return nil, err
		}
		if err := run(t, "fig13a", pairs); err != nil {
			return nil, err
		}
	}
	for _, products := range []int{340, 3400} {
		t, err := kge.New(kge.Params{Products: products, Seed: seed})
		if err != nil {
			return nil, err
		}
		if err := run(t, "fig13c", products); err != nil {
			return nil, err
		}
	}
	lin, err := lineageMacros(seed)
	if err != nil {
		return nil, err
	}
	out = append(out, lin...)
	col, err := columnarMacros(seed)
	if err != nil {
		return nil, err
	}
	out = append(out, col...)
	shd, err := shardMacros(seed)
	if err != nil {
		return nil, err
	}
	out = append(out, shd...)
	opt, err := optMacros(seed)
	if err != nil {
		return nil, err
	}
	return append(out, opt...), nil
}

// optMacros is the end-to-end before/after pair for the cost-based
// plan optimizer: the same DICE and GOTTA workflows with `-optimize`
// off and on, at the hand-set 8-worker width the tasks ship with. The
// optimizer sweep (E15) asserts both outputs bit-identical, so the
// SimSeconds delta is the pure scheduling win of the rewrites (wider
// parallelism, fused operators, swapped join builds) and the WallMS
// delta bounds the host-side price of running the passes.
func optMacros(seed uint64) ([]Macro, error) {
	const reps = 7
	off := core.MustRunConfig(core.WithWorkers(8))
	on := core.MustRunConfig(core.WithWorkers(8), core.WithOptimize(true))

	var out []Macro
	pair := func(task core.Task, size int) error {
		timeOnce := func(cfg core.RunConfig) (float64, float64, error) {
			runtime.GC()
			start := telemetry.WallClock()
			res, err := task.Run(core.Workflow, cfg)
			if err != nil {
				return 0, 0, err
			}
			return float64(telemetry.WallSince(start).Microseconds()) / 1000, res.SimSeconds, nil
		}
		for _, cfg := range []core.RunConfig{off, on} {
			if _, _, err := timeOnce(cfg); err != nil {
				return fmt.Errorf("bench: opt warmup: %w", err)
			}
		}
		wOff, wOn := -1.0, -1.0
		var simOff, simOn float64
		for r := 0; r < reps; r++ {
			w, s, err := timeOnce(off)
			if err != nil {
				return fmt.Errorf("bench: opt-off: %w", err)
			}
			if wOff < 0 || w < wOff {
				wOff = w
			}
			simOff = s
			w, s, err = timeOnce(on)
			if err != nil {
				return fmt.Errorf("bench: opt-on: %w", err)
			}
			if wOn < 0 || w < wOn {
				wOn = w
			}
			simOn = s
		}
		out = append(out,
			Macro{Task: task.Name(), Experiment: "opt-off", Size: size, WallMS: wOff, SimSeconds: simOff},
			Macro{Task: task.Name(), Experiment: "opt-on", Size: size, WallMS: wOn, SimSeconds: simOn},
		)
		return nil
	}

	dt, err := dice.New(dice.Params{Pairs: 200, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := pair(dt, 200); err != nil {
		return nil, err
	}
	gt, err := gotta.New(gotta.Params{Paragraphs: 16, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := pair(gt, 16); err != nil {
		return nil, err
	}
	return out, nil
}

// shardMacros is the end-to-end pair for the distributed tier (E14):
// the same DICE workflow on the legacy single-cluster path and on a
// 4-node sharded topology at the lifted 32-worker width. The golden
// shard tests pin both outputs bit-identical, so the wall-clock delta
// is the host-side price of exchange pricing and spill planning, and
// the SimSeconds delta is the simulated makespan win from the wider
// cluster.
func shardMacros(seed uint64) ([]Macro, error) {
	const (
		reps  = 7
		pairs = 2000
	)
	task, err := dice.New(dice.Params{Pairs: pairs, Seed: seed})
	if err != nil {
		return nil, err
	}
	single := core.MustRunConfig(core.WithWorkers(8))
	sharded := core.MustRunConfig(core.WithWorkers(32), core.WithNodes(4))
	timeOnce := func(cfg core.RunConfig) (float64, float64, error) {
		runtime.GC()
		start := telemetry.WallClock()
		res, err := task.Run(core.Workflow, cfg)
		if err != nil {
			return 0, 0, err
		}
		return float64(telemetry.WallSince(start).Microseconds()) / 1000, res.SimSeconds, nil
	}
	for _, cfg := range []core.RunConfig{single, sharded} {
		if _, _, err := timeOnce(cfg); err != nil {
			return nil, fmt.Errorf("bench: shard warmup: %w", err)
		}
	}
	n1, n4 := -1.0, -1.0
	var n1Sim, n4Sim float64
	for r := 0; r < reps; r++ {
		w, s, err := timeOnce(single)
		if err != nil {
			return nil, fmt.Errorf("bench: scale-n1: %w", err)
		}
		if n1 < 0 || w < n1 {
			n1 = w
		}
		n1Sim = s
		w, s, err = timeOnce(sharded)
		if err != nil {
			return nil, fmt.Errorf("bench: scale-n4: %w", err)
		}
		if n4 < 0 || w < n4 {
			n4 = w
		}
		n4Sim = s
	}
	return []Macro{
		{Task: task.Name(), Experiment: "scale-n1", Size: pairs, WallMS: n1, SimSeconds: n1Sim},
		{Task: task.Name(), Experiment: "scale-n4", Size: pairs, WallMS: n4, SimSeconds: n4Sim},
	}, nil
}

// columnarMacros is the end-to-end before/after pair for the columnar
// execution layer: the same DICE workflow with the automatic columnar
// fast paths globally disabled (the pre-columnar row engine) and
// enabled. Both runs compute bit-identical results — the golden
// columnar tests assert that — so the wall-clock delta is pure
// representation, not work.
func columnarMacros(seed uint64) ([]Macro, error) {
	const (
		reps  = 7
		pairs = 200
	)
	task, err := dice.New(dice.Params{Pairs: pairs, Seed: seed})
	if err != nil {
		return nil, err
	}
	prev := relation.ColumnarEnabled()
	defer relation.SetColumnarEnabled(prev)
	timeOnce := func(columnar bool) (float64, float64, error) {
		relation.SetColumnarEnabled(columnar)
		runtime.GC() // same pacing state for both engines, as measure does
		start := telemetry.WallClock()
		res, err := task.Run(core.Workflow, core.MustRunConfig())
		if err != nil {
			return 0, 0, err
		}
		return float64(telemetry.WallSince(start).Microseconds()) / 1000, res.SimSeconds, nil
	}
	// Warm both engines, then interleave timed reps and keep each
	// variant's fastest run, as the telemetry pairs do.
	for _, c := range []bool{false, true} {
		if _, _, err := timeOnce(c); err != nil {
			return nil, fmt.Errorf("bench: colpath warmup: %w", err)
		}
	}
	row, col := -1.0, -1.0
	var rowSim, colSim float64
	for r := 0; r < reps; r++ {
		rw, rs, err := timeOnce(false)
		if err != nil {
			return nil, fmt.Errorf("bench: colpath-off: %w", err)
		}
		if row < 0 || rw < row {
			row = rw
		}
		rowSim = rs
		cw, cs, err := timeOnce(true)
		if err != nil {
			return nil, fmt.Errorf("bench: colpath-on: %w", err)
		}
		if col < 0 || cw < col {
			col = cw
		}
		colSim = cs
	}
	return []Macro{
		{Task: task.Name(), Experiment: "colpath-off", Size: pairs, WallMS: row, SimSeconds: rowSim},
		{Task: task.Name(), Experiment: "colpath-on", Size: pairs, WallMS: col, SimSeconds: colSim},
	}, nil
}

// lineageMacros times the iterate workload's two wall-clock extremes on
// the DICE workflow: a cold run with no store attached, and a fully
// warm run against a populated store where every operator hits, so the
// engine's work is provenance resolution plus replay of cached tables.
// The pair bounds what the artifact store costs (or saves) in host
// time, as opposed to the simulated seconds the iterate experiment
// reports.
func lineageMacros(seed uint64) ([]Macro, error) {
	const (
		reps  = 7
		pairs = 50
	)
	task, err := dice.New(dice.Params{Pairs: pairs, Seed: seed})
	if err != nil {
		return nil, err
	}
	store, err := lineage.NewStore(nil, 0)
	if err != nil {
		return nil, err
	}
	warmCfg := core.MustRunConfig(core.WithLineage(store))
	// Populate pass, untimed: after it every fingerprint in the warm
	// variant's plan resolves to a committed artifact.
	if _, err := task.Run(core.Workflow, warmCfg); err != nil {
		return nil, err
	}
	timeOnce := func(cfg core.RunConfig) (float64, float64, error) {
		start := telemetry.WallClock()
		res, err := task.Run(core.Workflow, cfg)
		if err != nil {
			return 0, 0, err
		}
		return float64(telemetry.WallSince(start).Microseconds()) / 1000, res.SimSeconds, nil
	}
	cold, warm := -1.0, -1.0
	var coldSim, warmSim float64
	for r := 0; r < reps; r++ {
		cw, cs, err := timeOnce(core.MustRunConfig())
		if err != nil {
			return nil, fmt.Errorf("bench: iterate-cold: %w", err)
		}
		if cold < 0 || cw < cold {
			cold = cw
		}
		coldSim = cs
		ww, ws, err := timeOnce(warmCfg)
		if err != nil {
			return nil, fmt.Errorf("bench: iterate-warm: %w", err)
		}
		if warm < 0 || ww < warm {
			warm = ww
		}
		warmSim = ws
	}
	return []Macro{
		{Task: task.Name(), Experiment: "iterate-cold", Size: pairs, WallMS: cold, SimSeconds: coldSim},
		{Task: task.Name(), Experiment: "iterate-warm", Size: pairs, WallMS: warm, SimSeconds: warmSim},
	}, nil
}

// Run executes the full harness.
func Run(seed uint64) (*Report, error) {
	mac, err := macros(seed)
	if err != nil {
		return nil, err
	}
	return &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Env:        CurrentEnv(),
		Micro:      micros(),
		Macro:      mac,
	}, nil
}
