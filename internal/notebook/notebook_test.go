package notebook

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cost"
)

func TestKernelVariables(t *testing.T) {
	k := NewKernel(nil)
	if k.Defined("x") {
		t.Fatal("x should not be defined")
	}
	if _, err := k.Need("x"); err == nil || !strings.Contains(err.Error(), "NameError") {
		t.Fatalf("Need should fail like Python: %v", err)
	}
	k.Set("x", 42)
	v, ok := k.Get("x")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if v, err := k.Need("x"); err != nil || v.(int) != 42 {
		t.Fatalf("Need = %v, %v", v, err)
	}
}

func TestKernelClock(t *testing.T) {
	m := cost.Default()
	k := NewKernel(m)
	if k.Elapsed() != m.ControlOverhead {
		t.Fatalf("fresh kernel elapsed = %v, want startup %v", k.Elapsed(), m.ControlOverhead)
	}
	k.Charge(cost.Work{Interp: 2, Mem: 1})
	if got := k.Elapsed() - m.ControlOverhead; got != 3 {
		t.Fatalf("charged = %v, want 3", got)
	}
	k.ChargeSeconds(1.5)
	if got := k.Elapsed() - m.ControlOverhead; got != 4.5 {
		t.Fatalf("charged = %v, want 4.5", got)
	}
}

func TestChargeSecondsRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKernel(nil).ChargeSeconds(-1)
}

func TestRunAllTopDown(t *testing.T) {
	nb := New("demo", nil)
	var order []string
	for _, name := range []string{"load", "train", "plot"} {
		name := name
		nb.Add(&Cell{Name: name, Run: func(k *Kernel) error {
			order = append(order, name)
			return nil
		}})
	}
	if err := nb.RunAll(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "load,train,plot" {
		t.Fatalf("order = %v", order)
	}
	if nb.Kernel().ExecCount() != 3 {
		t.Fatalf("exec count = %d", nb.Kernel().ExecCount())
	}
}

func TestArbitraryExecutionOrder(t *testing.T) {
	// The Figure 8 hazard: "Write" can run before "Sentiment_Analysis";
	// state decides what happens, not cell position.
	nb := New("fig8", nil)
	load := nb.Add(&Cell{Name: "Load", Run: func(k *Kernel) error {
		k.Set("data", []int{1, 2, 3})
		return nil
	}})
	analyze := nb.Add(&Cell{Name: "Sentiment_Analysis", Run: func(k *Kernel) error {
		if _, err := k.Need("data"); err != nil {
			return err
		}
		k.Set("predictions", []int{1, 0, 1})
		return nil
	}})
	write := nb.Add(&Cell{Name: "Write", Run: func(k *Kernel) error {
		_, err := k.Need("predictions")
		return err
	}})

	// Out of order: Write before Sentiment_Analysis fails with a
	// NameError, exactly as in a real notebook.
	if err := nb.RunCell(load); err != nil {
		t.Fatal(err)
	}
	err := nb.RunCell(write)
	if err == nil || !strings.Contains(err.Error(), "NameError") {
		t.Fatalf("expected NameError, got %v", err)
	}
	// Correct order now succeeds.
	if err := nb.RunCell(analyze); err != nil {
		t.Fatal(err)
	}
	if err := nb.RunCell(write); err != nil {
		t.Fatal(err)
	}
	if nb.Kernel().ExecCount() != 4 {
		t.Fatalf("exec count = %d", nb.Kernel().ExecCount())
	}
}

func TestCellErrorTraceback(t *testing.T) {
	nb := New("trace", nil)
	boom := errors.New("division by zero")
	idx := nb.Add(&Cell{Name: "compute", Run: func(k *Kernel) error {
		return k.Call("main", func() error {
			return k.Call("helper", func() error {
				return boom
			})
		})
	}})
	err := nb.RunCell(idx)
	var cellErr *CellError
	if !errors.As(err, &cellErr) {
		t.Fatalf("error type %T", err)
	}
	if cellErr.Cell != "compute" || cellErr.ExecCount != 1 {
		t.Fatalf("cell error = %+v", cellErr)
	}
	if len(cellErr.Stack) != 2 || cellErr.Stack[0] != "main" || cellErr.Stack[1] != "helper" {
		t.Fatalf("stack = %v", cellErr.Stack)
	}
	if !strings.Contains(cellErr.Error(), "main -> helper") {
		t.Fatalf("rendered = %q", cellErr.Error())
	}
	if !errors.Is(err, boom) {
		t.Fatal("unwrap chain broken")
	}
}

func TestErrStackResetBetweenCells(t *testing.T) {
	nb := New("reset", nil)
	bad := nb.Add(&Cell{Name: "bad", Run: func(k *Kernel) error {
		return k.Call("f", func() error { return errors.New("x") })
	}})
	direct := nb.Add(&Cell{Name: "direct", Run: func(k *Kernel) error {
		return errors.New("no frames")
	}})
	if err := nb.RunCell(bad); err == nil {
		t.Fatal("expected error")
	}
	err := nb.RunCell(direct)
	var cellErr *CellError
	if !errors.As(err, &cellErr) {
		t.Fatal("expected CellError")
	}
	if len(cellErr.Stack) != 0 {
		t.Fatalf("stale stack leaked: %v", cellErr.Stack)
	}
}

func TestRunCellOutOfRange(t *testing.T) {
	nb := New("oob", nil)
	if err := nb.RunCell(0); err == nil {
		t.Fatal("expected error for missing cell")
	}
	if err := nb.RunCell(-1); err == nil {
		t.Fatal("expected error for negative index")
	}
}

func TestHistoryRecordsTime(t *testing.T) {
	nb := New("hist", nil)
	nb.Add(&Cell{Name: "work", Run: func(k *Kernel) error {
		k.Charge(cost.Work{Interp: 5})
		return nil
	}})
	if err := nb.RunAll(); err != nil {
		t.Fatal(err)
	}
	h := nb.Kernel().History()
	if len(h) != 1 || h[0].Cell != "work" || h[0].Count != 1 {
		t.Fatalf("history = %+v", h)
	}
	if h[0].Seconds != 5 {
		t.Fatalf("cell seconds = %v", h[0].Seconds)
	}
}

func TestLinesOfCode(t *testing.T) {
	c := &Cell{Name: "loc", Source: "import pandas as pd\n\n# a comment\ndf = pd.read_csv('x')\nprint(df)\n"}
	if c.LinesOfCode() != 3 {
		t.Fatalf("cell LoC = %d, want 3", c.LinesOfCode())
	}
	nb := New("loc", nil)
	nb.Add(c)
	nb.Add(&Cell{Name: "more", Source: "x = 1\ny = 2"})
	if nb.LinesOfCode() != 5 {
		t.Fatalf("notebook LoC = %d, want 5", nb.LinesOfCode())
	}
}

func TestRunAllStopsAtFirstError(t *testing.T) {
	nb := New("stop", nil)
	ran := 0
	nb.Add(&Cell{Name: "a", Run: func(k *Kernel) error { ran++; return nil }})
	nb.Add(&Cell{Name: "b", Run: func(k *Kernel) error { ran++; return errors.New("fail") }})
	nb.Add(&Cell{Name: "c", Run: func(k *Kernel) error { ran++; return nil }})
	if err := nb.RunAll(); err == nil {
		t.Fatal("expected error")
	}
	if ran != 2 {
		t.Fatalf("ran %d cells, want 2", ran)
	}
}

func TestRestartClearsState(t *testing.T) {
	nb := New("restart", nil)
	nb.Add(&Cell{Name: "set", Run: func(k *Kernel) error {
		k.Set("x", 1)
		k.Charge(cost.Work{Interp: 2})
		return nil
	}})
	if err := nb.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !nb.Kernel().Defined("x") || nb.Kernel().ExecCount() != 1 {
		t.Fatal("state missing before restart")
	}
	elapsed := nb.Elapsed()
	nb.Restart()
	if nb.Kernel().Defined("x") {
		t.Fatal("variable survived restart")
	}
	if nb.Kernel().ExecCount() != 0 || len(nb.Kernel().History()) != 0 {
		t.Fatal("execution history survived restart")
	}
	if nb.Elapsed() >= elapsed {
		t.Fatal("clock did not reset")
	}
	if nb.NumCells() != 1 {
		t.Fatal("cells should survive restart")
	}
}

func TestRestartAndRunAllReproducible(t *testing.T) {
	nb := New("rra", nil)
	nb.Add(&Cell{Name: "a", Run: func(k *Kernel) error {
		k.Set("x", 1)
		k.Charge(cost.Work{Interp: 1})
		return nil
	}})
	nb.Add(&Cell{Name: "b", Run: func(k *Kernel) error {
		_, err := k.Need("x")
		k.Charge(cost.Work{Interp: 2})
		return err
	}})
	if err := nb.RestartAndRunAll(); err != nil {
		t.Fatal(err)
	}
	first := nb.Elapsed()
	if err := nb.RestartAndRunAll(); err != nil {
		t.Fatal(err)
	}
	if nb.Elapsed() != first {
		t.Fatalf("restart-and-run-all not reproducible: %v vs %v", nb.Elapsed(), first)
	}
	if nb.Kernel().ExecCount() != 2 {
		t.Fatalf("exec count = %d after restart", nb.Kernel().ExecCount())
	}
}
