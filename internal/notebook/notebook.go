// Package notebook implements the script paradigm's execution engine —
// a stand-in for Jupyter Notebook. A notebook is an ordered list of
// cells sharing one kernel that holds named state. Cells may be run in
// any order (the paper's Figure 8 hazard), execution is counted with
// the familiar sequential counter, errors carry a cell-level synthetic
// stack trace, and each cell charges simulated time to the kernel's
// virtual clock. Scaled-out cells charge the makespan of a Ray-style
// run (see internal/raysim) instead of single-machine time.
package notebook

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/telemetry"
)

// Kernel holds the interpreter state shared by all cells: named
// variables, the execution counter, the virtual clock and the active
// call stack used to build cell-level tracebacks.
type Kernel struct {
	model     *cost.Model
	vars      map[string]any
	execCount int
	elapsed   float64
	replaying bool
	stack     []string
	errStack  []string // stack captured at the deepest failing frame
	history   []ExecutionRecord
}

// ExecutionRecord is one entry of the kernel's execution history.
type ExecutionRecord struct {
	Cell    string
	Count   int
	Seconds float64
	Err     error
}

// NewKernel starts a kernel. Starting the interpreter costs the
// model's control overhead. A nil model uses cost.Default().
func NewKernel(model *cost.Model) *Kernel {
	if model == nil {
		model = cost.Default()
	}
	return &Kernel{
		model:   model,
		vars:    make(map[string]any),
		elapsed: model.ControlOverhead,
	}
}

// Model returns the kernel's cost model.
func (k *Kernel) Model() *cost.Model { return k.model }

// Set stores a variable in the kernel namespace.
func (k *Kernel) Set(name string, v any) { k.vars[name] = v }

// Get fetches a variable; ok is false if it was never defined — the
// out-of-order execution hazard surfaces here.
func (k *Kernel) Get(name string) (any, bool) {
	v, ok := k.vars[name]
	return v, ok
}

// Need fetches a variable or returns a NameError-style failure, as
// Python would when a cell runs before the cell defining its inputs.
func (k *Kernel) Need(name string) (any, error) {
	v, ok := k.vars[name]
	if !ok {
		return nil, fmt.Errorf("NameError: name %q is not defined", name)
	}
	return v, nil
}

// Defined reports whether a variable exists.
func (k *Kernel) Defined(name string) bool {
	_, ok := k.vars[name]
	return ok
}

// Charge adds CPU work (executed in Python) to the virtual clock. A
// replaying kernel (see Notebook.ReplayCell) suppresses the charge: the
// cell's state transitions happen, its compute already did.
func (k *Kernel) Charge(w cost.Work) {
	if k.replaying {
		return
	}
	k.elapsed += w.Seconds(cost.Python)
}

// ChargeSeconds adds raw simulated seconds (for example a Ray run's
// makespan) to the virtual clock.
func (k *Kernel) ChargeSeconds(s float64) {
	if s < 0 {
		panic("notebook: negative time charge")
	}
	if k.replaying {
		return
	}
	k.elapsed += s
}

// Replaying reports whether the kernel is currently rebuilding state
// from a lineage replay rather than executing fresh work. Cells with
// side effects beyond the virtual clock (telemetry attachment, cluster
// instrumentation) consult it to stay quiet during replays.
func (k *Kernel) Replaying() bool { return k.replaying }

// MarkWarm zeroes the start-up control overhead on a kernel that has
// not yet executed a cell, modeling an iteration against an
// already-running kernel instead of a fresh interpreter launch.
func (k *Kernel) MarkWarm() {
	if k.execCount == 0 {
		k.elapsed = 0
	}
}

// Elapsed returns the simulated seconds accumulated so far.
func (k *Kernel) Elapsed() float64 { return k.elapsed }

// ExecCount returns the number of cells executed so far.
func (k *Kernel) ExecCount() int { return k.execCount }

// History returns the execution history.
func (k *Kernel) History() []ExecutionRecord {
	out := make([]ExecutionRecord, len(k.history))
	copy(out, k.history)
	return out
}

// Call runs fn under a named frame so that failures carry a synthetic
// Python-style traceback. Frames nest; the stack at the deepest failing
// frame is what the cell error reports.
func (k *Kernel) Call(frame string, fn func() error) error {
	k.stack = append(k.stack, frame)
	defer func() { k.stack = k.stack[:len(k.stack)-1] }()
	err := fn()
	if err != nil && k.errStack == nil {
		k.errStack = append([]string(nil), k.stack...)
	}
	return err
}

// Cell is one executable notebook cell. Source is the pseudo-Python
// text shown to the user; it is what the lines-of-code experiment
// counts.
type Cell struct {
	Name   string
	Source string
	Run    func(k *Kernel) error
}

// LinesOfCode counts the cell's non-blank, non-comment source lines.
func (c *Cell) LinesOfCode() int {
	n := 0
	for _, line := range strings.Split(c.Source, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		n++
	}
	return n
}

// CellError is a failure attributed to one cell, carrying the
// cell-level stack trace the script paradigm reports (paper Aspect #1).
type CellError struct {
	Cell      string
	ExecCount int
	Stack     []string // innermost frame last
	Err       error
}

// Error renders a compact Python-flavoured traceback.
func (e *CellError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell %q (In[%d]): ", e.Cell, e.ExecCount)
	if len(e.Stack) > 0 {
		fmt.Fprintf(&b, "in %s: ", strings.Join(e.Stack, " -> "))
	}
	b.WriteString(e.Err.Error())
	return b.String()
}

// Unwrap exposes the underlying error.
func (e *CellError) Unwrap() error { return e.Err }

// Notebook is an ordered list of cells plus their shared kernel.
type Notebook struct {
	name     string
	cells    []*Cell
	kernel   *Kernel
	rec      *telemetry.Recorder
	proc     string
	progress telemetry.ProgressSink
	progTask string
}

// SetTelemetry attaches a recorder; RunCell then emits one span per
// cell execution on the "kernel" track of process proc. Cell spans are
// genuinely dual-stamped: the kernel's virtual clock is live while the
// cell runs, so the span carries both the deterministic virtual
// interval and the volatile wall interval. A nil recorder (the
// default) keeps execution uninstrumented.
func (n *Notebook) SetTelemetry(rec *telemetry.Recorder, proc string) {
	n.rec = rec
	if proc == "" {
		proc = "script:" + n.name
	}
	n.proc = proc
}

// SetProgress attaches a live progress sink; RunCell then publishes a
// "running" event when a cell starts and a "completed"/"failed" event
// when it returns, stamped with the kernel's virtual clock. Cells are
// the coarsest progress unit a notebook surface offers — the paper's
// point that scripts expose far less of their execution than a GUI
// workflow does.
func (n *Notebook) SetProgress(sink telemetry.ProgressSink, task string) {
	n.progress = sink
	n.progTask = task
}

// New creates a notebook with a fresh kernel. A nil model uses
// cost.Default().
func New(name string, model *cost.Model) *Notebook {
	return &Notebook{name: name, kernel: NewKernel(model)}
}

// Name returns the notebook name.
func (n *Notebook) Name() string { return n.name }

// Kernel returns the shared kernel.
func (n *Notebook) Kernel() *Kernel { return n.kernel }

// Add appends a cell and returns its index.
func (n *Notebook) Add(c *Cell) int {
	n.cells = append(n.cells, c)
	return len(n.cells) - 1
}

// Cells returns the cell list.
func (n *Notebook) Cells() []*Cell { return n.cells }

// NumCells returns the number of cells.
func (n *Notebook) NumCells() int { return len(n.cells) }

// RunCell executes the i-th cell. Cells may be run in any order and
// multiple times; only kernel state links them.
func (n *Notebook) RunCell(i int) error {
	if i < 0 || i >= len(n.cells) {
		return fmt.Errorf("notebook: no cell %d", i)
	}
	c := n.cells[i]
	k := n.kernel
	k.execCount++
	k.errStack = nil
	count := k.execCount
	before := k.elapsed
	var wall0 int64
	if n.rec != nil {
		wall0 = n.rec.NowNS()
	}
	if n.progress != nil {
		n.progress.Publish(telemetry.ProgressEvent{
			Task: n.progTask, Paradigm: "script",
			Op: c.Name, Kind: "cell", State: "running",
			VirtSeconds: before,
		})
	}
	var err error
	if c.Run != nil {
		err = c.Run(k)
	}
	rec := ExecutionRecord{Cell: c.Name, Count: count, Seconds: k.elapsed - before}
	if n.rec != nil {
		wall1 := n.rec.NowNS()
		cat := "cell"
		if err != nil {
			cat = "cell-error"
		}
		n.rec.Record(telemetry.Span{
			Proc: n.proc, Track: "kernel",
			Name:    fmt.Sprintf("In[%d] %s", count, c.Name),
			Cat:     cat,
			HasVirt: true,
			Virtual: telemetry.Virt{Start: before, Dur: k.elapsed - before},
			HasWall: true,
			Clock:   telemetry.Wall{StartNS: wall0, DurNS: wall1 - wall0},
		})
		n.rec.Metrics.Counter("nb."+n.name+".cells_run").Add(0, 1)
	}
	if n.progress != nil {
		state := "completed"
		if err != nil {
			state = "failed"
		}
		n.progress.Publish(telemetry.ProgressEvent{
			Task: n.progTask, Paradigm: "script",
			Op: c.Name, Kind: "cell", State: state,
			VirtSeconds: k.elapsed,
		})
	}
	if err != nil {
		cellErr := &CellError{
			Cell:      c.Name,
			ExecCount: count,
			Stack:     k.errStack,
			Err:       err,
		}
		rec.Err = cellErr
		k.history = append(k.history, rec)
		return cellErr
	}
	k.history = append(k.history, rec)
	return nil
}

// ReplayCell re-executes the i-th cell with all time charges
// suppressed, to rebuild kernel state (variables, object-store
// contents) that downstream cells depend on when lineage has already
// certified the cell's result. It does not advance the execution
// counter, record history, or emit telemetry: from the outside the cell
// was served from cache, not run.
func (n *Notebook) ReplayCell(i int) error {
	if i < 0 || i >= len(n.cells) {
		return fmt.Errorf("notebook: no cell %d", i)
	}
	c := n.cells[i]
	k := n.kernel
	k.replaying = true
	k.errStack = nil
	defer func() { k.replaying = false }()
	var err error
	if c.Run != nil {
		err = c.Run(k)
	}
	if err != nil {
		return &CellError{Cell: c.Name, ExecCount: k.execCount, Stack: k.errStack, Err: err}
	}
	return nil
}

// RunAll executes every cell top-down, stopping at the first error.
func (n *Notebook) RunAll() error {
	for i := range n.cells {
		if err := n.RunCell(i); err != nil {
			return err
		}
	}
	return nil
}

// Restart discards all kernel state — variables, execution counter,
// history and the virtual clock — exactly like restarting a Jupyter
// kernel. The cells remain.
func (n *Notebook) Restart() {
	n.kernel = NewKernel(n.kernel.model)
}

// RestartAndRunAll is the familiar "Restart & Run All" flow: the one
// execution order that is reproducible by construction, because no
// stale kernel state can leak between runs.
func (n *Notebook) RestartAndRunAll() error {
	n.Restart()
	return n.RunAll()
}

// LinesOfCode sums the cells' source line counts — the metric of the
// paper's Figure 12a.
func (n *Notebook) LinesOfCode() int {
	total := 0
	for _, c := range n.cells {
		total += c.LinesOfCode()
	}
	return total
}

// Elapsed returns the kernel's simulated seconds.
func (n *Notebook) Elapsed() float64 { return n.kernel.Elapsed() }
