package planopt

import (
	"math"

	"repro/internal/dataflow"
	"repro/internal/shard"
)

// soleOutEdge returns a node's single output edge, if it has exactly
// one.
func soleOutEdge(w *dataflow.Workflow, id dataflow.NodeID) (dataflow.EdgeInfo, bool) {
	var out dataflow.EdgeInfo
	n := 0
	for _, e := range w.Edges() {
		if e.From == id {
			out, n = e, n+1
		}
	}
	return out, n == 1
}

// ---------------------------------------------------------------------------
// OPT001 — filter ordering / predicate pushdown.
//
// Two adjacent filters commute exactly: both are stateless row
// predicates, so filter(a, filter(b, t)) == filter(b, filter(a, t))
// row for row, in order. Running the more selective one first shrinks
// the intermediate stream. Pushing a filter below an arbitrary UDF or
// join is NOT attempted: predicates are opaque Go closures over row
// positions, so column-independence cannot be proven statically — those
// candidates are reported as rejections.
func passFilterOrder(w *dataflow.Workflow, est estimates, r *Report) int {
	applied := 0
	ids, err := w.TopoIDs()
	if err != nil {
		return 0
	}
	for _, a := range ids {
		if _, ok := w.OperatorAt(a).(*dataflow.FilterOp); !ok {
			continue
		}
		out, sole := soleOutEdge(w, a)
		if !sole {
			continue
		}
		b := out.To
		if _, ok := w.OperatorAt(b).(*dataflow.FilterOp); !ok {
			// Explain the classic pushdown this engine cannot prove:
			// moving the filter below its producer needs to know which
			// columns the predicate reads, and a Go closure doesn't say.
			if prod := producerOf(w, a); prod >= 0 {
				switch w.OperatorAt(prod).(type) {
				case *dataflow.MapOp, *dataflow.HashJoinOp:
					r.rejected(RuleFilterOrder, w, a,
						"cannot push filter below %q: predicate is an opaque row closure, column independence unprovable", w.NameOf(prod))
				}
			}
			continue
		}
		ina, inb := est[producerOf(w, a)], est[a]
		outb := est[b]
		if ina == nil || inb == nil || outb == nil || ina.rows <= 0 || inb.rows <= 0 {
			continue
		}
		selA := inb.rows / ina.rows
		selB := outb.rows / inb.rows
		if selB >= selA-0.01 {
			r.rejected(RuleFilterOrder, w, a,
				"filter order already optimal: selectivity %.2f before %.2f", selA, selB)
			continue
		}
		if err := w.SwapAdjacentUnary(a, b); err != nil {
			r.rejected(RuleFilterOrder, w, a, "%v", err)
			continue
		}
		r.applied(RuleFilterOrder, w, b,
			"run %q (selectivity %.2f) before %q (selectivity %.2f)", w.NameOf(b), selB, w.NameOf(a), selA)
		applied++
	}
	return applied
}

// producerOf returns the producer of a unary node's single input edge,
// or -1.
func producerOf(w *dataflow.Workflow, id dataflow.NodeID) dataflow.NodeID {
	in := w.InEdgesOf(id)
	if len(in) != 1 {
		return -1
	}
	return in[0].From
}

// ---------------------------------------------------------------------------
// OPT002 — projection pushdown below sort.
//
// sort -> project becomes project -> sort when the projection keeps
// every sort key. Both forms are exact: SortBy is stable and compares
// only the sort fields, the projection preserves row order, and the
// kept columns are identical — so the output streams match row for row
// while the sort buffers narrower tuples.
func passProjectPush(w *dataflow.Workflow, _ estimates, r *Report) int {
	applied := 0
	ids, err := w.TopoIDs()
	if err != nil {
		return 0
	}
	for _, s := range ids {
		sop, ok := w.OperatorAt(s).(*dataflow.SortOp)
		if !ok {
			continue
		}
		out, sole := soleOutEdge(w, s)
		if !sole {
			continue
		}
		p := out.To
		pop, ok := w.OperatorAt(p).(*dataflow.ProjectOp)
		if !ok {
			continue
		}
		kept := make(map[string]bool, len(pop.Names))
		for _, n := range pop.Names {
			kept[n] = true
		}
		missing := ""
		for _, f := range sop.Fields {
			if !kept[f] {
				missing = f
				break
			}
		}
		if missing != "" {
			r.rejected(RuleProjectPush, w, p,
				"projection drops sort key %q; pushing it below %q would change the order", missing, w.NameOf(s))
			continue
		}
		if err := w.SwapAdjacentUnary(s, p); err != nil {
			r.rejected(RuleProjectPush, w, p, "%v", err)
			continue
		}
		r.applied(RuleProjectPush, w, p,
			"project %d columns before %q sorts them", len(pop.Names), w.NameOf(s))
		applied++
	}
	return applied
}

// ---------------------------------------------------------------------------
// OPT003 — join input reordering.
//
// An inner hash join builds a table of port 0 and streams port 1 past
// it; building the smaller side shrinks both the table and the
// log-sized probe cost. The swap installs a column permutation on the
// operator so downstream schemas are untouched; output order follows
// the new probe side, which is multiset-equal — and every task restores
// order downstream (sorted result assembly or total-order ranking).
func passJoinSwap(w *dataflow.Workflow, est estimates, r *Report) error {
	ids, err := w.TopoIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, ok := w.OperatorAt(id).(*dataflow.HashJoinOp); !ok {
			continue
		}
		in := w.InEdgesOf(id)
		if len(in) != 2 {
			continue
		}
		eb, ep := est[in[0].From], est[in[1].From]
		if eb == nil || ep == nil {
			continue
		}
		if eb.assumed || ep.assumed {
			r.rejected(RuleJoinSwap, w, id, "input cardinality unknown (opaque upstream operator)")
			continue
		}
		bb, pb := eb.bytes(), ep.bytes()
		if bb <= pb {
			r.rejected(RuleJoinSwap, w, id,
				"build side already smaller: est %.0f rows / %.0f KB vs probe %.0f rows / %.0f KB",
				eb.rows, bb/1024, ep.rows, pb/1024)
			continue
		}
		if err := w.SwapJoinInputs(id); err != nil {
			r.rejected(RuleJoinSwap, w, id, "%v", err)
			continue
		}
		r.applied(RuleJoinSwap, w, id,
			"swap inputs: build est %.0f rows / %.0f KB, probe est %.0f rows / %.0f KB — build the smaller side",
			eb.rows, bb/1024, ep.rows, pb/1024)
	}
	return nil
}

// ---------------------------------------------------------------------------
// OPT004 — exchange kind per repartition edge.
//
// On a sharded topology a parallel hash join normally repartitions both
// sides across the NIC. When the build side is small enough, replicating
// it to every node and leaving the probe stream local moves fewer bytes
// in total. Correctness: a broadcast build gives every worker the full
// hash table, so each probe row joins exactly once wherever round-robin
// leaves it — multiset-equal output.
func passExchange(w *dataflow.Workflow, est estimates, opt Options, r *Report) error {
	if !opt.Topology.Sharded() {
		return nil
	}
	nodes := opt.Topology.NumNodes()
	ids, err := w.TopoIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, ok := w.OperatorAt(id).(*dataflow.HashJoinOp); !ok {
			continue
		}
		if w.ParallelismOf(id) < 2 {
			continue
		}
		in := w.InEdgesOf(id)
		if len(in) != 2 || !in[0].Part.IsHash() || !in[1].Part.IsHash() {
			continue
		}
		eb, ep := est[in[0].From], est[in[1].From]
		if eb == nil || ep == nil || eb.assumed || ep.assumed {
			r.rejected(RuleExchange, w, id, "input volumes unknown (opaque upstream operator)")
			continue
		}
		bb, pb := int64(eb.bytes()), int64(ep.bytes())
		if mem := opt.Topology.WorkerMem(); mem > 0 && bb > mem/2 {
			r.rejected(RuleExchange, w, id,
				"build side est %d KB exceeds half the %d KB per-worker budget; broadcast would replicate it everywhere", bb/1024, mem/1024)
			continue
		}
		if !shard.BroadcastWins(opt.Model, bb, pb, nodes) {
			r.rejected(RuleExchange, w, id,
				"hash repartition cheaper: broadcast would cross %d KB, hash crosses %d KB",
				shard.ExBroadcast.CrossBytes(bb, nodes)/1024,
				(shard.ExHash.CrossBytes(bb, nodes)+shard.ExHash.CrossBytes(pb, nodes))/1024)
			continue
		}
		if err := w.SetEdgePartitioning(id, 0, dataflow.Broadcast()); err != nil {
			return err
		}
		if err := w.SetEdgePartitioning(id, 1, dataflow.RoundRobin()); err != nil {
			return err
		}
		r.applied(RuleExchange, w, id,
			"broadcast build est %d KB to %d nodes; probe est %d KB stays local (hash would cross %d KB)",
			bb/1024, nodes, pb/1024,
			(shard.ExHash.CrossBytes(bb, nodes)+shard.ExHash.CrossBytes(pb, nodes))/1024)
	}
	return nil
}

// ---------------------------------------------------------------------------
// OPT006 — automatic per-operator parallelism.
//
// Task builders hand-set parallelism to the run's worker knob; the
// topology usually has more vCPU slots than that. Raising a stateless
// (or correctly partitioned stateful) operator to the topology's
// capacity only re-deals rows across more workers: stateless operators
// are row-local, hash-partitioned joins and group-bys keep each key on
// one worker, so the output multiset is unchanged. Operators pinned to
// one worker are never touched — a single worker is how the plan
// encodes an ordered stream.
func passParallelism(w *dataflow.Workflow, opt Options, r *Report) error {
	capacity := opt.MaxParallelism
	ids, err := w.TopoIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		op := w.OperatorAt(id)
		if op == nil {
			continue
		}
		p := w.ParallelismOf(id)
		if p < 2 || p >= capacity {
			continue
		}
		switch op.(type) {
		case *dataflow.SortOp, *dataflow.LimitOp:
			continue
		}
		desc := op.Desc()
		in := w.InEdgesOf(id)
		eligible := false
		switch op.(type) {
		case *dataflow.HashJoinOp:
			eligible = joinPartitioningOK(in)
		case *dataflow.GroupByOp:
			eligible = len(in) == 1 && in[0].Part.IsHash()
		default:
			eligible = desc.Stateless
			if !eligible {
				continue
			}
			for _, e := range in {
				if e.Port < len(desc.BlockingPorts) && desc.BlockingPorts[e.Port] && e.Part.IsRoundRobin() {
					r.rejected(RuleParallelism, w, id,
						"blocking port %d is round-robin fed; more workers would re-deal it", e.Port)
					eligible = false
					break
				}
			}
		}
		if !eligible {
			continue
		}
		if err := w.SetParallelism(id, capacity); err != nil {
			return err
		}
		r.applied(RuleParallelism, w, id, "workers %d -> %d (topology capacity)", p, capacity)
	}
	return nil
}

// joinPartitioningOK mirrors the validator's WF006 rule: hash on both
// sides, or a broadcast build with any probe partitioning.
func joinPartitioningOK(in []dataflow.EdgeInfo) bool {
	if len(in) != 2 {
		return false
	}
	if in[0].Part.IsBroadcast() {
		return true
	}
	return in[0].Part.IsHash() && in[1].Part.IsHash()
}

// ---------------------------------------------------------------------------
// OPT007 — source batch-size selection.
//
// The engine's auto batch size divides every input into ~96 batches
// regardless of who consumes them. Batch granularity is what pipelines
// a plan: a consumer's batch job becomes ready only when the matching
// upstream batch lands, and the final batch's transfer latency sits on
// the critical path, so wide consumers want at least a few batches per
// worker in flight. With the (post-OPT006) consumer parallelism known,
// the optimizer refines batching to min four waves per worker — never
// coarser than auto. Batching never changes row content or per-worker
// order, so the rewrite is exact on sequential plans and multiset-safe
// elsewhere.
func passBatch(w *dataflow.Workflow, est estimates, opt Options, r *Report) error {
	if opt.FixedBatch {
		return nil
	}
	ids, err := w.TopoIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if !w.IsSource(id) || w.BatchSizeOf(id) != 0 {
			continue
		}
		e := est[id]
		if e == nil || e.rows <= 0 {
			continue
		}
		maxPar := 1
		for _, edge := range w.Edges() {
			if edge.From == id {
				if p := w.ParallelismOf(edge.To); p > maxPar {
					maxPar = p
				}
			}
		}
		rows := int(e.rows)
		nb := 4 * maxPar
		if nb < 96 {
			nb = 96 // never coarser than the auto policy
		}
		batch := int(math.Ceil(e.rows / float64(nb)))
		if batch < 1 {
			batch = 1
		}
		if batch > 2048 {
			batch = 2048
		}
		if batch == dataflow.AutoBatchSize(rows) {
			continue
		}
		if err := w.SetSourceBatch(id, batch); err != nil {
			return err
		}
		r.applied(RuleBatch, w, id,
			"batch %d rows (auto %d): ~%d batches keep %d consumer workers fed",
			batch, dataflow.AutoBatchSize(rows), nb, maxPar)
	}
	return nil
}

// ---------------------------------------------------------------------------
// OPT005 — operator fusion.
//
// An edge between two operators costs queueing, per-batch latency and a
// worker-startup for the downstream node. When the downstream operator
// is stateless, non-blocking, unary, single-producer, same-language and
// runs at the same parallelism over a round-robin edge, executing it
// inside the upstream worker produces exactly the stream the edge would
// have delivered — batch for batch, in order — so fusion is an exact
// rewrite. Fusion runs last: earlier passes see only primitive
// operators.
func passFusion(w *dataflow.Workflow, r *Report) error {
	for {
		a, b, ok := nextFusion(w)
		if !ok {
			break
		}
		nameA, nameB := w.NameOf(a), w.NameOf(b)
		fusedID := a
		if err := w.Fuse(a, b); err != nil {
			return err
		}
		r.applied(RuleFusion, w, fusedID, "fused %q into %q: one edge, one startup fewer", nameB, nameA)
	}
	// Emit near-miss rejections once, on the settled graph.
	ids, err := w.TopoIDs()
	if err != nil {
		return err
	}
	for _, a := range ids {
		if w.OperatorAt(a) == nil {
			continue
		}
		e, sole := soleOutEdge(w, a)
		if !sole {
			continue
		}
		b := e.To
		bop := w.OperatorAt(b)
		if bop == nil {
			continue
		}
		bd := bop.Desc()
		if bd.Ports != 1 || len(w.InEdgesOf(b)) != 1 {
			continue
		}
		ad := w.OperatorAt(a).Desc()
		switch {
		case !bd.Stateless:
			r.rejected(RuleFusion, w, b, "downstream operator %q is stateful; fusing would change its input stream", bd.Name)
		case bd.BlockingPorts[0]:
			r.rejected(RuleFusion, w, b, "downstream operator %q blocks; fusion would serialize the pipeline", bd.Name)
		case !e.Part.IsRoundRobin():
			r.rejected(RuleFusion, w, b, "edge is %s; fusing would bypass the repartition", e.Part)
		case w.ParallelismOf(a) != w.ParallelismOf(b):
			r.rejected(RuleFusion, w, b, "parallelism differs (%d vs %d); fusing would change worker assignment",
				w.ParallelismOf(a), w.ParallelismOf(b))
		case ad.Language != bd.Language:
			r.rejected(RuleFusion, w, b, "languages differ (%s vs %s); fused work would be mispriced", ad.Language, bd.Language)
		}
	}
	return nil
}

// nextFusion finds the first fusable edge a -> b, in topological order.
func nextFusion(w *dataflow.Workflow) (a, b dataflow.NodeID, ok bool) {
	ids, err := w.TopoIDs()
	if err != nil {
		return 0, 0, false
	}
	for _, id := range ids {
		aop := w.OperatorAt(id)
		if aop == nil {
			continue
		}
		switch aop.(type) {
		case *dataflow.SortOp, *dataflow.LimitOp:
			continue
		}
		e, sole := soleOutEdge(w, id)
		if !sole || !e.Part.IsRoundRobin() {
			continue
		}
		bop := w.OperatorAt(e.To)
		if bop == nil {
			continue
		}
		bd := bop.Desc()
		if bd.Ports != 1 || len(w.InEdgesOf(e.To)) != 1 {
			continue
		}
		if !bd.Stateless || bd.BlockingPorts[0] {
			continue
		}
		if w.ParallelismOf(id) != w.ParallelismOf(e.To) {
			continue
		}
		if aop.Desc().Language != bd.Language {
			continue
		}
		return id, e.To, true
	}
	return 0, 0, false
}
