package planopt

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/relation"
	"repro/internal/shard"
)

func intTable(n int) *relation.Table {
	s := relation.MustSchema(
		relation.Field{Name: "id", Type: relation.Int},
		relation.Field{Name: "v", Type: relation.Int},
	)
	t := relation.NewTable(s)
	for i := 0; i < n; i++ {
		t.AppendUnchecked(relation.Tuple{int64(i), int64(i % 100)})
	}
	return t
}

// runBoth builds the workflow twice, optimizes one copy, runs both on
// the same topology and returns (plainResult, optResult, report).
func runBoth(t *testing.T, build func() *dataflow.Workflow, opt Options) (*dataflow.Result, *dataflow.Result, *Report) {
	t.Helper()
	plain := build()
	optimized := build()
	rep, err := Optimize(optimized, opt)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	cfg := dataflow.Config{Shard: opt.Topology}
	resPlain, err := plain.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	resOpt, err := optimized.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("optimized run: %v", err)
	}
	return resPlain, resOpt, rep
}

func hasApplied(rep *Report, rule string) bool {
	for _, d := range rep.Diags {
		if d.Rule == rule && strings.HasPrefix(d.Msg, "applied: ") {
			return true
		}
	}
	return false
}

func hasRejected(rep *Report, rule string) bool {
	for _, d := range rep.Diags {
		if d.Rule == rule && strings.HasPrefix(d.Msg, "rejected: ") {
			return true
		}
	}
	return false
}

func TestEstimatorFilterSelectivity(t *testing.T) {
	w := dataflow.New("est")
	src := w.Source("src", intTable(1000))
	f := w.Op(dataflow.NewFilter("keep-low", cost.Python, func(r relation.Tuple) bool {
		return r.MustInt(1) < 10 // 10% of v values
	}))
	snk := w.Sink("out")
	w.Connect(src, f, 0, dataflow.RoundRobin())
	w.Connect(f, snk, 0, dataflow.RoundRobin())

	est, err := inferEstimates(w, 512)
	if err != nil {
		t.Fatal(err)
	}
	fe := est[f]
	if fe == nil || fe.assumed {
		t.Fatalf("filter estimate missing or assumed: %+v", fe)
	}
	if fe.rows < 50 || fe.rows > 200 {
		t.Fatalf("filter estimate %f rows, want ~100", fe.rows)
	}
	if se := est[src]; se.rows != 1000 {
		t.Fatalf("source estimate %f rows, want exactly 1000", se.rows)
	}
}

func TestFilterOrderReordersSelectiveFirst(t *testing.T) {
	build := func() *dataflow.Workflow {
		w := dataflow.New("filters")
		src := w.Source("src", intTable(2000))
		wide := w.Op(dataflow.NewFilter("wide", cost.Python, func(r relation.Tuple) bool {
			return r.MustInt(1) < 90 // keeps 90%
		}))
		narrow := w.Op(dataflow.NewFilter("narrow", cost.Python, func(r relation.Tuple) bool {
			return r.MustInt(1)%10 == 0 // keeps 10%
		}))
		snk := w.Sink("out")
		w.Connect(src, wide, 0, dataflow.RoundRobin())
		w.Connect(wide, narrow, 0, dataflow.RoundRobin())
		w.Connect(narrow, snk, 0, dataflow.RoundRobin())
		return w
	}
	resPlain, resOpt, rep := runBoth(t, build, Options{})
	if !hasApplied(rep, RuleFilterOrder) {
		t.Fatalf("no OPT001 applied; diags: %v", rep.Diags)
	}
	if !resOpt.Tables["out"].Equal(resPlain.Tables["out"]) {
		t.Fatal("filter reorder changed the output")
	}
}

func TestFilterOrderKeepsOptimalOrder(t *testing.T) {
	w := dataflow.New("filters-ok")
	src := w.Source("src", intTable(2000))
	narrow := w.Op(dataflow.NewFilter("narrow", cost.Python, func(r relation.Tuple) bool {
		return r.MustInt(1)%10 == 0
	}))
	wide := w.Op(dataflow.NewFilter("wide", cost.Python, func(r relation.Tuple) bool {
		return r.MustInt(1) < 90
	}))
	snk := w.Sink("out")
	w.Connect(src, narrow, 0, dataflow.RoundRobin())
	w.Connect(narrow, wide, 0, dataflow.RoundRobin())
	w.Connect(wide, snk, 0, dataflow.RoundRobin())

	rep, err := Optimize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hasApplied(rep, RuleFilterOrder) {
		t.Fatalf("OPT001 applied to an already-optimal chain; diags: %v", rep.Diags)
	}
	if !hasRejected(rep, RuleFilterOrder) {
		t.Fatalf("want an OPT001 rejection explaining the kept order; diags: %v", rep.Diags)
	}
}

func TestProjectPushBelowSort(t *testing.T) {
	build := func() *dataflow.Workflow {
		w := dataflow.New("sortproj")
		src := w.Source("src", intTable(500))
		srt := w.Op(dataflow.NewSort("sort", cost.Python, "v"))
		prj := w.Op(dataflow.NewProject("proj", cost.Python, "v"))
		snk := w.Sink("out")
		w.Connect(src, srt, 0, dataflow.RoundRobin())
		w.Connect(srt, prj, 0, dataflow.RoundRobin())
		w.Connect(prj, snk, 0, dataflow.RoundRobin())
		return w
	}
	resPlain, resOpt, rep := runBoth(t, build, Options{})
	if !hasApplied(rep, RuleProjectPush) {
		t.Fatalf("no OPT002 applied; diags: %v", rep.Diags)
	}
	if !resOpt.Tables["out"].Equal(resPlain.Tables["out"]) {
		t.Fatal("projection pushdown changed the output")
	}
}

func TestProjectPushRejectedWhenSortKeyDropped(t *testing.T) {
	w := dataflow.New("sortproj-bad")
	src := w.Source("src", intTable(500))
	srt := w.Op(dataflow.NewSort("sort", cost.Python, "v"))
	prj := w.Op(dataflow.NewProject("proj", cost.Python, "id")) // drops the sort key
	snk := w.Sink("out")
	w.Connect(src, srt, 0, dataflow.RoundRobin())
	w.Connect(srt, prj, 0, dataflow.RoundRobin())
	w.Connect(prj, snk, 0, dataflow.RoundRobin())

	rep, err := Optimize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hasApplied(rep, RuleProjectPush) {
		t.Fatal("OPT002 applied although the projection drops the sort key")
	}
	if !hasRejected(rep, RuleProjectPush) {
		t.Fatalf("want an OPT002 rejection; diags: %v", rep.Diags)
	}
}

func joinWorkflow(par int, part func(key string) dataflow.Partitioning) func() *dataflow.Workflow {
	return func() *dataflow.Workflow {
		us := relation.MustSchema(
			relation.Field{Name: "uid", Type: relation.Int},
			relation.Field{Name: "name", Type: relation.String},
		)
		users := relation.NewTable(us)
		for i := 0; i < 40; i++ {
			users.AppendUnchecked(relation.Tuple{int64(i), fmt.Sprintf("user-%d", i)})
		}
		os := relation.MustSchema(
			relation.Field{Name: "oid", Type: relation.Int},
			relation.Field{Name: "uid", Type: relation.Int},
			relation.Field{Name: "note", Type: relation.String},
		)
		orders := relation.NewTable(os)
		for i := 0; i < 2000; i++ {
			orders.AppendUnchecked(relation.Tuple{int64(i), int64(i % 50), fmt.Sprintf("order-%d-padding-padding", i)})
		}
		w := dataflow.New("join")
		u := w.Source("users", users)
		o := w.Source("orders", orders)
		var opts []dataflow.NodeOpt
		if par > 1 {
			opts = append(opts, dataflow.WithParallelism(par))
		}
		// Deliberately mis-shaped: the big orders table is the build side.
		j := w.Op(dataflow.NewHashJoin("join", cost.Python, "uid", "uid", relation.Inner), opts...)
		snk := w.Sink("out")
		w.Connect(o, j, 0, part("uid"))
		w.Connect(u, j, 1, part("uid"))
		w.Connect(j, snk, 0, dataflow.RoundRobin())
		return w
	}
}

func TestJoinSwapBuildsSmallerSide(t *testing.T) {
	rr := func(string) dataflow.Partitioning { return dataflow.RoundRobin() }
	build := joinWorkflow(1, rr)
	resPlain, resOpt, rep := runBoth(t, build, Options{})
	if !hasApplied(rep, RuleJoinSwap) {
		t.Fatalf("no OPT003 applied; diags: %v", rep.Diags)
	}
	po, pp := resPlain.Tables["out"], resOpt.Tables["out"]
	if !po.Schema().Equal(pp.Schema()) {
		t.Fatalf("join swap changed the output schema: %v vs %v", po.Schema(), pp.Schema())
	}
	if !po.EqualUnordered(pp) {
		t.Fatal("join swap changed the output rows")
	}
}

func TestExchangeBroadcastsSmallBuild(t *testing.T) {
	hash := func(key string) dataflow.Partitioning { return dataflow.HashPartition(key) }
	topo, err := shard.Topology{Nodes: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Keep hand-set parallelism: no OPT006 interference wanted here.
	build := joinWorkflow(8, hash)

	// Swap pass runs first and flips build/probe so the small side is
	// built; the exchange pass should then broadcast the small build.
	resPlain, resOpt, rep := runBoth(t, build, Options{Topology: topo, MaxParallelism: 8})
	if !hasApplied(rep, RuleExchange) {
		t.Fatalf("no OPT004 applied; diags: %v", rep.Diags)
	}
	if !resPlain.Tables["out"].EqualUnordered(resOpt.Tables["out"]) {
		t.Fatal("exchange choice changed the output rows")
	}
	if resOpt.SimSeconds >= resPlain.SimSeconds {
		t.Fatalf("broadcast exchange did not help: %.3fs opt vs %.3fs plain", resOpt.SimSeconds, resPlain.SimSeconds)
	}
}

func TestExchangeSilentOffSharded(t *testing.T) {
	hash := func(key string) dataflow.Partitioning { return dataflow.HashPartition(key) }
	w := joinWorkflow(4, hash)()
	rep, err := Optimize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diags {
		if d.Rule == RuleExchange {
			t.Fatalf("OPT004 diag on a single-node topology: %v", d)
		}
	}
}

func TestParallelismRaisedToCapacity(t *testing.T) {
	build := func() *dataflow.Workflow {
		w := dataflow.New("par")
		src := w.Source("src", intTable(4000))
		f := w.Op(dataflow.NewFilter("keep", cost.Python, func(r relation.Tuple) bool {
			return r.MustInt(1)%2 == 0
		}), dataflow.WithParallelism(2))
		snk := w.Sink("out")
		w.Connect(src, f, 0, dataflow.RoundRobin())
		w.Connect(f, snk, 0, dataflow.RoundRobin())
		return w
	}
	resPlain, resOpt, rep := runBoth(t, build, Options{MaxParallelism: 8})
	if !hasApplied(rep, RuleParallelism) {
		t.Fatalf("no OPT006 applied; diags: %v", rep.Diags)
	}
	if !resPlain.Tables["out"].EqualUnordered(resOpt.Tables["out"]) {
		t.Fatal("parallelism raise changed the output rows")
	}
	w := build()
	if _, err := Optimize(w, Options{MaxParallelism: 8}); err != nil {
		t.Fatal(err)
	}
	for _, e := range w.Edges() {
		if w.NameOf(e.To) == "keep" && w.ParallelismOf(e.To) != 8 {
			t.Fatalf("filter parallelism = %d, want 8", w.ParallelismOf(e.To))
		}
	}
}

func TestParallelismNeverTouchesSequentialOperators(t *testing.T) {
	w := dataflow.New("seq")
	src := w.Source("src", intTable(100))
	f := w.Op(dataflow.NewFilter("keep", cost.Python, func(r relation.Tuple) bool { return true }))
	snk := w.Sink("out")
	w.Connect(src, f, 0, dataflow.RoundRobin())
	w.Connect(f, snk, 0, dataflow.RoundRobin())
	if _, err := Optimize(w, Options{MaxParallelism: 16}); err != nil {
		t.Fatal(err)
	}
	for _, e := range w.Edges() {
		if w.NameOf(e.To) == "keep" && w.ParallelismOf(e.To) != 1 {
			t.Fatalf("sequential operator raised to %d workers", w.ParallelismOf(e.To))
		}
	}
}

func TestBatchSizedToConsumerParallelism(t *testing.T) {
	build := func() *dataflow.Workflow {
		w := dataflow.New("batch")
		src := w.Source("src", intTable(30000))
		// Hand-set parallelism equal to capacity so only OPT007 fires:
		// 32 workers want more than the ~96 auto batches in flight.
		f := w.Op(dataflow.NewFilter("keep", cost.Python, func(r relation.Tuple) bool {
			return r.MustInt(1)%2 == 0
		}), dataflow.WithParallelism(32))
		snk := w.Sink("out")
		w.Connect(src, f, 0, dataflow.RoundRobin())
		w.Connect(f, snk, 0, dataflow.RoundRobin())
		return w
	}
	resPlain, resOpt, rep := runBoth(t, build, Options{MaxParallelism: 32})
	if !hasApplied(rep, RuleBatch) {
		t.Fatalf("no OPT007 applied; diags: %v", rep.Diags)
	}
	if hasApplied(rep, RuleParallelism) {
		t.Fatalf("OPT006 fired; this test wants batch sizing alone: %v", rep.Diags)
	}
	if !resPlain.Tables["out"].EqualUnordered(resOpt.Tables["out"]) {
		t.Fatal("batch sizing changed the output rows")
	}
	if resOpt.SimSeconds > resPlain.SimSeconds {
		t.Fatalf("batch sizing hurt a wide consumer: %.3fs opt vs %.3fs plain",
			resOpt.SimSeconds, resPlain.SimSeconds)
	}
}

func TestBatchPassDisabledWhenPinned(t *testing.T) {
	w := dataflow.New("pinned")
	src := w.Source("src", intTable(3000))
	snk := w.Sink("out")
	w.Connect(src, snk, 0, dataflow.RoundRobin())
	rep, err := Optimize(w, Options{FixedBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diags {
		if d.Rule == RuleBatch {
			t.Fatalf("OPT007 diag despite FixedBatch: %v", d)
		}
	}
}

func TestFusionCollapsesStatelessChain(t *testing.T) {
	outSchema := relation.MustSchema(relation.Field{Name: "double", Type: relation.Int})
	build := func() *dataflow.Workflow {
		w := dataflow.New("fuse")
		src := w.Source("src", intTable(600))
		f := w.Op(dataflow.NewFilter("keep", cost.Python, func(r relation.Tuple) bool {
			return r.MustInt(1)%3 == 0
		}))
		m := w.Op(dataflow.NewMap("double", cost.Python, outSchema, func(r relation.Tuple) ([]relation.Tuple, error) {
			return []relation.Tuple{{r.MustInt(1) * 2}}, nil
		}))
		snk := w.Sink("out")
		w.Connect(src, f, 0, dataflow.RoundRobin())
		w.Connect(f, m, 0, dataflow.RoundRobin())
		w.Connect(m, snk, 0, dataflow.RoundRobin())
		return w
	}
	resPlain, resOpt, rep := runBoth(t, build, Options{})
	if !hasApplied(rep, RuleFusion) {
		t.Fatalf("no OPT005 applied; diags: %v", rep.Diags)
	}
	if !resPlain.Tables["out"].Equal(resOpt.Tables["out"]) {
		t.Fatal("fusion changed the output")
	}
	w := build()
	before := w.NumOperators()
	if _, err := Optimize(w, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := w.NumOperators(); got != before-1 {
		t.Fatalf("operators after fusion = %d, want %d", got, before-1)
	}
}

func TestFusionRejectsCrossLanguageEdge(t *testing.T) {
	w := dataflow.New("xlang")
	src := w.Source("src", intTable(200))
	f := w.Op(dataflow.NewFilter("keep", cost.Python, func(r relation.Tuple) bool { return true }))
	p := w.Op(dataflow.NewProject("narrow", cost.Java, "v"))
	snk := w.Sink("out")
	w.Connect(src, f, 0, dataflow.RoundRobin())
	w.Connect(f, p, 0, dataflow.RoundRobin())
	w.Connect(p, snk, 0, dataflow.RoundRobin())
	rep, err := Optimize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hasApplied(rep, RuleFusion) {
		t.Fatal("OPT005 fused across languages")
	}
	if !hasRejected(rep, RuleFusion) {
		t.Fatalf("want an OPT005 rejection naming the language mismatch; diags: %v", rep.Diags)
	}
}

func TestReportDeterministicAndAttributed(t *testing.T) {
	rr := func(string) dataflow.Partitioning { return dataflow.RoundRobin() }
	build := joinWorkflow(1, rr)
	rep1, err := Optimize(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Optimize(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Diags) != len(rep2.Diags) {
		t.Fatalf("diag count differs across identical runs: %d vs %d", len(rep1.Diags), len(rep2.Diags))
	}
	for i := range rep1.Diags {
		if rep1.Diags[i] != rep2.Diags[i] {
			t.Fatalf("diag %d differs: %v vs %v", i, rep1.Diags[i], rep2.Diags[i])
		}
	}
	for i, d := range rep1.Diags {
		if d.Node == "" {
			t.Fatalf("diag %d has no node name: %v", i, d)
		}
		if !strings.HasPrefix(d.Rule, "OPT0") {
			t.Fatalf("diag %d rule %q outside the OPT0xx namespace", i, d.Rule)
		}
		if !strings.HasPrefix(d.Msg, "applied: ") && !strings.HasPrefix(d.Msg, "rejected: ") {
			t.Fatalf("diag %d msg %q has no verdict prefix", i, d.Msg)
		}
		if i > 0 {
			prev := rep1.Diags[i-1]
			if prev.Rule > d.Rule || (prev.Rule == d.Rule && prev.ID > d.ID) {
				t.Fatalf("diags not sorted at %d: %v before %v", i, prev, d)
			}
		}
	}
	if rep1.Applied+rep1.Rejected != len(rep1.Diags) {
		t.Fatalf("applied %d + rejected %d != %d diags", rep1.Applied, rep1.Rejected, len(rep1.Diags))
	}
}
