package planopt

import (
	"repro/internal/dataflow"
	"repro/internal/relation"
)

// estimate is one node's inferred output cardinality. rows is the
// extrapolated row count, sample a small concrete prefix of the node's
// output (nil when the operator is opaque), and assumed marks estimates
// that rest on a fallback assumption rather than sampled evidence —
// rewrites that need real numbers (join swap, exchange choice) refuse
// to act on assumed inputs.
type estimate struct {
	rows    float64
	sample  *relation.Table
	assumed bool
}

// avgRowBytes estimates the serialized size of one row, falling back to
// a flat guess when no sample exists.
func (e *estimate) avgRowBytes() float64 {
	if e.sample != nil && e.sample.Len() > 0 {
		return float64(relation.TableBytes(e.sample)) / float64(e.sample.Len())
	}
	return 64
}

// bytes estimates the node's total output volume.
func (e *estimate) bytes() float64 { return e.rows * e.avgRowBytes() }

// estimates maps every node to its output estimate.
type estimates map[dataflow.NodeID]*estimate

// sampleTable copies at most n rows of t into a fresh table.
func sampleTable(t *relation.Table, n int) *relation.Table {
	s := relation.NewTable(t.Schema())
	for i, row := range t.Rows() {
		if i >= n {
			break
		}
		s.AppendUnchecked(row)
	}
	return s
}

// capSample trims a sample table to at most n rows.
func capSample(t *relation.Table, n int) *relation.Table {
	if t == nil || t.Len() <= n {
		return t
	}
	return sampleTable(t, n)
}

// inferEstimates walks the validated workflow in topological order and
// derives per-node cardinalities: sources are exact, builtin relational
// operators are sampled (predicates and UDFs run over a small prefix of
// real rows), and opaque custom operators degrade to a pass-through
// assumption. The workflow is never mutated and no simulated work is
// charged — this is the static half of the optimizer.
func inferEstimates(w *dataflow.Workflow, sampleRows int) (estimates, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	order, err := w.TopoIDs()
	if err != nil {
		return nil, err
	}
	est := make(estimates, len(order))
	for _, id := range order {
		switch {
		case w.IsSource(id):
			t := w.SourceTableAt(id)
			est[id] = &estimate{rows: float64(t.Len()), sample: sampleTable(t, sampleRows)}
		case w.IsSink(id):
			in := w.InEdgesOf(id)
			if len(in) == 1 {
				est[id] = est[in[0].From]
			} else {
				est[id] = &estimate{assumed: true}
			}
		default:
			est[id] = estimateOperator(w, id, est, sampleRows)
		}
	}
	return est, nil
}

// inputEstimates resolves a node's per-port input estimates.
func inputEstimates(w *dataflow.Workflow, id dataflow.NodeID, est estimates) []*estimate {
	edges := w.InEdgesOf(id)
	in := make([]*estimate, len(edges))
	for _, e := range edges {
		if e.Port < len(in) {
			in[e.Port] = est[e.From]
		}
	}
	for i, e := range in {
		if e == nil {
			in[i] = &estimate{assumed: true}
		}
	}
	return in
}

// estimateOperator derives one operator's output estimate from its
// inputs. Sampling failures (an erroring UDF row) degrade gracefully —
// the row contributes nothing — and unknown operator types yield an
// assumed pass-through.
func estimateOperator(w *dataflow.Workflow, id dataflow.NodeID, est estimates, sampleRows int) *estimate {
	in := inputEstimates(w, id, est)
	if len(in) == 0 {
		return &estimate{assumed: true}
	}
	op := w.OperatorAt(id)
	switch o := op.(type) {
	case *dataflow.FilterOp:
		src := in[0]
		if src.sample == nil || src.sample.Len() == 0 {
			return &estimate{rows: src.rows, sample: nil, assumed: true}
		}
		kept := relation.NewTable(src.sample.Schema())
		for _, row := range src.sample.Rows() {
			if o.Keep(row) {
				kept.AppendUnchecked(row)
			}
		}
		sel := float64(kept.Len()) / float64(src.sample.Len())
		return &estimate{rows: src.rows * sel, sample: kept, assumed: src.assumed}

	case *dataflow.ProjectOp:
		src := in[0]
		if src.sample == nil {
			return &estimate{rows: src.rows, assumed: true}
		}
		out, err := relation.Project(src.sample, o.Names...)
		if err != nil {
			return &estimate{rows: src.rows, assumed: true}
		}
		return &estimate{rows: src.rows, sample: out, assumed: src.assumed}

	case *dataflow.MapOp:
		src := in[0]
		if src.sample == nil || src.sample.Len() == 0 {
			return &estimate{rows: src.rows, assumed: true}
		}
		out := relation.NewTable(o.Out)
		for _, row := range src.sample.Rows() {
			produced, err := o.Fn(row)
			if err != nil {
				continue
			}
			for _, p := range produced {
				out.AppendUnchecked(p)
			}
		}
		ratio := float64(out.Len()) / float64(src.sample.Len())
		return &estimate{rows: src.rows * ratio, sample: capSample(out, sampleRows), assumed: src.assumed}

	case *dataflow.HashJoinOp:
		build, probe := in[0], in[1]
		if build.sample == nil || probe.sample == nil ||
			build.sample.Len() == 0 || probe.sample.Len() == 0 {
			rows := probe.rows
			if build.rows < rows {
				rows = build.rows
			}
			return &estimate{rows: rows, assumed: true}
		}
		joined, err := relation.HashJoin(probe.sample, build.sample, o.ProbeKey, o.BuildKey, o.Kind)
		if err != nil {
			return &estimate{rows: probe.rows, assumed: true}
		}
		// Scale the sampled match count by the inverse sampling
		// fractions of both sides (independence assumption).
		scale := (build.rows / float64(build.sample.Len())) * (probe.rows / float64(probe.sample.Len()))
		return &estimate{
			rows:    float64(joined.Len()) * scale,
			sample:  capSample(joined, sampleRows),
			assumed: build.assumed || probe.assumed,
		}

	case *dataflow.GroupByOp:
		src := in[0]
		if src.sample == nil || src.sample.Len() == 0 {
			return &estimate{rows: src.rows, assumed: true}
		}
		grouped, err := relation.GroupBy(src.sample, o.Keys, o.Aggs)
		if err != nil {
			return &estimate{rows: src.rows, assumed: true}
		}
		sel := float64(grouped.Len()) / float64(src.sample.Len())
		rows := src.rows * sel
		if rows > src.rows {
			rows = src.rows
		}
		return &estimate{rows: rows, sample: grouped, assumed: src.assumed}

	case *dataflow.SortOp:
		return &estimate{rows: in[0].rows, sample: in[0].sample, assumed: in[0].assumed}

	case *dataflow.LimitOp:
		rows := in[0].rows
		if float64(o.N) < rows {
			rows = float64(o.N)
		}
		return &estimate{rows: rows, sample: capSample(in[0].sample, o.N), assumed: in[0].assumed}

	case *dataflow.UnionOp:
		rows := in[0].rows + in[1].rows
		var sample *relation.Table
		if in[0].sample != nil && in[1].sample != nil && in[0].sample.Schema().Equal(in[1].sample.Schema()) {
			sample = relation.NewTable(in[0].sample.Schema())
			for _, src := range []*relation.Table{in[0].sample, in[1].sample} {
				for _, row := range src.Rows() {
					sample.AppendUnchecked(row)
				}
			}
			sample = capSample(sample, sampleRows)
		}
		return &estimate{rows: rows, sample: sample, assumed: in[0].assumed || in[1].assumed}

	default:
		// Opaque custom operator: assume pass-through cardinality over
		// all ports and no knowledge of the output rows.
		rows := 0.0
		assumed := true
		for _, e := range in {
			rows += e.rows
		}
		return &estimate{rows: rows, assumed: assumed}
	}
}
