// Package planopt is the cost-based plan optimizer: a static analysis
// pass pipeline over the dataflow IR that first infers per-node
// cardinality and volume estimates (sampling real rows through the
// relational operators, without executing the plan), then applies
// provably output-preserving rewrites — filter ordering, projection
// pushdown, join input reordering, optimizer-chosen exchange kinds,
// automatic per-operator parallelism, and source batch sizing — and
// finally fuses adjacent same-worker operators. Every rewrite, applied
// or rejected, is explained by an OPT0xx diagnostic in the validator's
// Diag shape.
//
// The optimizer's contract is that outputs are bit-identical with and
// without it: each pass either preserves the output stream exactly
// (single-worker reorderings, fusion) or preserves it as a multiset
// feeding an order-restoring stage the tasks already have (sorted
// result assembly, total-order ranking). The experiments assert that
// contract on every task at every topology.
package planopt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/shard"
)

// Optimizer rule IDs, continuing the WF0xx plan-diagnostic namespace.
const (
	// RuleFilterOrder: adjacent filters reordered so the more selective
	// one runs first.
	RuleFilterOrder = "OPT001"
	// RuleProjectPush: a projection pushed below a sort so the sort
	// moves fewer bytes.
	RuleProjectPush = "OPT002"
	// RuleJoinSwap: a hash join's build and probe sides exchanged so
	// the smaller input is built.
	RuleJoinSwap = "OPT003"
	// RuleExchange: a repartitioning edge's exchange kind chosen from
	// estimated volumes (broadcast build vs hash both sides).
	RuleExchange = "OPT004"
	// RuleFusion: two adjacent operators fused into one node.
	RuleFusion = "OPT005"
	// RuleParallelism: an operator's hand-set worker count raised to
	// the topology's capacity.
	RuleParallelism = "OPT006"
	// RuleBatch: a source's batch size chosen from its cardinality and
	// consumer parallelism.
	RuleBatch = "OPT007"
)

// Options configures one optimizer run.
type Options struct {
	// Model prices rewrites; nil uses cost.Default().
	Model *cost.Model
	// Topology is the cluster the plan will run on; exchange choice is
	// active only on sharded (multi-node) topologies.
	Topology shard.Topology
	// MaxParallelism caps the parallelism pass; 0 derives it from the
	// topology's total worker vCPUs.
	MaxParallelism int
	// SampleRows bounds the row sample threaded through the estimator;
	// 0 uses a default of 512.
	SampleRows int
	// FixedBatch marks the source batch size as caller-pinned (an
	// explicit experiment knob), disabling the batch-selection pass.
	FixedBatch bool
}

func (o Options) normalize() Options {
	if o.Model == nil {
		o.Model = cost.Default()
	}
	o.Topology, _ = o.Topology.Normalize()
	if o.MaxParallelism <= 0 {
		o.MaxParallelism = o.Topology.TotalVCPUs()
	}
	if o.SampleRows <= 0 {
		o.SampleRows = 512
	}
	return o
}

// ConfigOptions derives optimizer options from a run config — the
// bridge the task builders use for `repro run -optimize`.
func ConfigOptions(cfg core.RunConfig) Options {
	return Options{
		Model:    cfg.Model,
		Topology: cfg.Topology(),
	}
}

// Report is the outcome of one optimizer run: every rewrite explained,
// sorted deterministically (rule, then node).
type Report struct {
	Diags    []dataflow.Diag `json:"diags,omitempty"`
	Applied  int             `json:"applied"`
	Rejected int             `json:"rejected"`
}

func (r *Report) applied(rule string, w *dataflow.Workflow, id dataflow.NodeID, format string, args ...any) {
	r.Diags = append(r.Diags, dataflow.Diag{
		Rule: rule, Node: w.NameOf(id), ID: id,
		Msg: "applied: " + fmt.Sprintf(format, args...),
	})
	r.Applied++
}

func (r *Report) rejected(rule string, w *dataflow.Workflow, id dataflow.NodeID, format string, args ...any) {
	r.Diags = append(r.Diags, dataflow.Diag{
		Rule: rule, Node: w.NameOf(id), ID: id,
		Msg: "rejected: " + fmt.Sprintf(format, args...),
	})
	r.Rejected++
}

// Optimize rewrites the workflow in place and reports every decision.
// The workflow must validate before; it is guaranteed to validate
// cleanly after (both the first-error validator and the multi-error
// one), or Optimize fails without leaving a half-rewritten plan on the
// happy path.
func Optimize(w *dataflow.Workflow, opt Options) (*Report, error) {
	opt = opt.normalize()
	if err := w.Validate(); err != nil {
		return nil, err
	}
	r := &Report{}

	est, err := inferEstimates(w, opt.SampleRows)
	if err != nil {
		return nil, err
	}
	structural := passFilterOrder(w, est, r) + passProjectPush(w, est, r)
	if structural > 0 {
		// Reordered chains change intermediate cardinalities; rebuild
		// before the volume-sensitive passes.
		if est, err = inferEstimates(w, opt.SampleRows); err != nil {
			return nil, err
		}
	}
	if err := passJoinSwap(w, est, r); err != nil {
		return nil, err
	}
	if err := passExchange(w, est, opt, r); err != nil {
		return nil, err
	}
	if err := passParallelism(w, opt, r); err != nil {
		return nil, err
	}
	if err := passBatch(w, est, opt, r); err != nil {
		return nil, err
	}
	if err := passFusion(w, r); err != nil {
		return nil, err
	}

	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("planopt: rewritten plan is invalid: %w", err)
	}
	if ds := dataflow.Validate(w); len(ds) > 0 {
		return nil, fmt.Errorf("planopt: rewritten plan has %d diagnostics, first: %s", len(ds), ds[0])
	}
	dataflow.SortDiags(r.Diags)
	return r, nil
}
