package service

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Runner executes one dispatched job synchronously. It runs on a
// worker goroutine; returning releases the job's vCPUs back to the
// scheduler. The runner owns all result handling (the service itself
// never sees task outputs).
type Runner func(job *Job) error

// Service is the live multi-tenant wrapper around Scheduler: Submit
// queues under admission control, a dispatch pump launches admitted
// jobs on worker goroutines through the Runner, and completions
// re-pump. All scheduler decisions happen under one mutex, so dispatch
// order is exactly the deterministic core's.
type Service struct {
	runner Runner
	epoch  time.Time

	mu     sync.Mutex
	sched  *Scheduler
	closed bool
	errs   map[string]error // terminal errors by job ID, bounded
	errIDs []string
	wg     sync.WaitGroup
}

// errKeep bounds the retained per-job terminal errors.
const errKeep = 128

// New builds a service around a scheduler config and a runner.
func New(cfg Config, runner Runner) *Service {
	if runner == nil {
		panic("service: New needs a runner")
	}
	return &Service{
		runner: runner,
		epoch:  telemetry.WallClock(),
		sched:  NewScheduler(cfg),
		errs:   make(map[string]error),
	}
}

// now is the service clock: wall seconds since construction.
func (s *Service) now() float64 { return telemetry.WallSince(s.epoch).Seconds() }

// Submit queues a job and pumps the dispatcher. It returns the
// scheduler's stamped copy, or a typed admission error
// (ErrTenantSaturated, ErrJobTooLarge) without side effects.
func (s *Service) Submit(job Job) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("service: closed")
	}
	stamped, err := s.sched.Submit(job, s.now())
	if err != nil {
		return nil, err
	}
	s.pumpLocked()
	return stamped, nil
}

// pumpLocked dispatches every job that fits the free budget. Callers
// hold s.mu. Worker goroutines are accounted in s.wg before the pump
// returns, so Close cannot miss them.
func (s *Service) pumpLocked() {
	for {
		job, ok := s.sched.Next(s.now())
		if !ok {
			return
		}
		s.wg.Add(1)
		go s.exec(job)
	}
}

// exec runs one dispatched job, completes it, and re-pumps.
func (s *Service) exec(job *Job) {
	defer s.wg.Done()
	start := telemetry.WallClock()
	err := s.runner(job)
	actual := telemetry.WallSince(start).Seconds()
	s.mu.Lock()
	if cerr := s.sched.Complete(job.ID, s.now(), actual); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		if len(s.errIDs) >= errKeep {
			delete(s.errs, s.errIDs[0])
			s.errIDs = s.errIDs[1:]
		}
		s.errs[job.ID] = err
		s.errIDs = append(s.errIDs, job.ID)
	}
	s.pumpLocked()
	s.mu.Unlock()
}

// JobErr reports a job's terminal error, if it failed and the record
// is still retained.
func (s *Service) JobErr(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errs[id]
}

// Stats snapshots per-tenant accounting.
func (s *Service) Stats() []TenantStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.Stats()
}

// Budget returns the admitted vCPU budget.
func (s *Service) Budget() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.Budget()
}

// UsedVCPUs reports currently dispatched vCPUs.
func (s *Service) UsedVCPUs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.UsedVCPUs()
}

// Drain blocks until every queued and in-flight job has completed.
// New submissions during a drain keep it alive; pair with Close for
// shutdown.
func (s *Service) Drain() { s.wg.Wait() }

// Close stops accepting submissions and waits for queued and
// in-flight jobs to finish.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}
