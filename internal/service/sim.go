package service

import (
	"container/heap"
	"fmt"
	"sort"
)

// CostFn reports a job's service time in simulated seconds. The
// serving experiment backs it with measured core run times; tests use
// synthetic tables.
type CostFn func(j *Job) float64

// SimReport is the outcome of one open-loop simulation at one offered
// load.
type SimReport struct {
	// Arrivals, Admitted, Rejected and Completed count jobs. Admitted =
	// Completed once the simulation drains.
	Arrivals  int `json:"arrivals"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	// P50/P99/Mean summarize sojourn time (completion - arrival) over
	// completed jobs, in sim seconds.
	P50Latency  float64 `json:"p50_latency"`
	P99Latency  float64 `json:"p99_latency"`
	MeanLatency float64 `json:"mean_latency"`
	// Makespan is the time of the last completion.
	Makespan float64 `json:"makespan"`
	// GoodputVCPUSeconds is the completed admitted work; Utilization
	// divides its rate by the vCPU budget.
	GoodputVCPUSeconds float64 `json:"goodput_vcpu_seconds"`
	Utilization        float64 `json:"utilization"`
	// Jain is Jain's fairness index over weight-normalized per-tenant
	// served vCPU-seconds.
	Jain    float64      `json:"jain"`
	Tenants []TenantStat `json:"tenants"`
}

// simEvent is one completion in the event heap.
type simEvent struct {
	at  float64
	seq int64
	job *Job
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (float64, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Simulate drives the scheduler through an open-loop arrival stream as
// a discrete-event simulation: arrivals submit (admission control may
// reject), the fair-share core dispatches whatever fits the budget,
// and completions fire cost(job) sim-seconds after dispatch. The
// stream is drained to the last completion. Everything is
// deterministic: same config, arrivals and costs — same report.
func Simulate(cfg Config, arrivals []Arrival, cost CostFn) (*SimReport, error) {
	if cost == nil {
		return nil, fmt.Errorf("service: Simulate needs a cost function")
	}
	s := NewScheduler(cfg)
	rep := &SimReport{Arrivals: len(arrivals)}
	var (
		done      eventHeap
		seq       int64
		latencies []float64
	)
	pump := func(now float64) {
		for {
			job, ok := s.Next(now)
			if !ok {
				return
			}
			seq++
			heap.Push(&done, simEvent{at: now + job.EstSeconds, seq: seq, job: job})
		}
	}
	next := 0
	for next < len(arrivals) || done.Len() > 0 {
		// Completions at time t free budget and queue space before an
		// arrival at the same t is admitted.
		ct, hasC := done.peek()
		if hasC && (next >= len(arrivals) || ct <= arrivals[next].At) {
			ev := heap.Pop(&done).(simEvent)
			if err := s.Complete(ev.job.ID, ev.at, 0); err != nil {
				return nil, err
			}
			rep.Completed++
			lat := ev.at - ev.job.SubmitAt
			latencies = append(latencies, lat)
			rep.MeanLatency += lat
			rep.GoodputVCPUSeconds += ev.job.cost()
			if ev.at > rep.Makespan {
				rep.Makespan = ev.at
			}
			pump(ev.at)
			continue
		}
		a := arrivals[next]
		next++
		spec, err := a.Spec.Normalize()
		if err != nil {
			return nil, err
		}
		job := Job{
			Tenant:     spec.Tenant,
			Priority:   spec.Priority,
			VCPUs:      spec.Workers,
			Spec:       spec,
			EstSeconds: 1,
		}
		job.EstSeconds = cost(&job)
		if job.EstSeconds <= 0 {
			return nil, fmt.Errorf("service: non-positive cost for task %q", spec.Task)
		}
		if _, err := s.Submit(job, a.At); err != nil {
			switch err.(type) {
			case *ErrTenantSaturated, *ErrJobTooLarge:
				rep.Rejected++
				continue
			default:
				return nil, err
			}
		}
		rep.Admitted++
		pump(a.At)
	}
	if n := len(latencies); n > 0 {
		rep.MeanLatency /= float64(n)
		sort.Float64s(latencies)
		rep.P50Latency = latencies[(n-1)/2]
		rep.P99Latency = latencies[int(0.99*float64(n-1))]
	}
	rep.Tenants = s.Stats()
	rep.Jain = JainIndex(rep.Tenants)
	if rep.Makespan > 0 {
		rep.Utilization = rep.GoodputVCPUSeconds / (rep.Makespan * float64(s.Budget()))
	}
	return rep, nil
}
