package service

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// TestFairShareConvergesToWeights keeps two tenants backlogged at
// unequal offered load (beta submits twice as much) and checks that
// completed service converges to the 2:1 configured weight ratio —
// the weights, not the arrival counts, decide the shares.
func TestFairShareConvergesToWeights(t *testing.T) {
	s := NewScheduler(Config{
		BudgetVCPUs: 6,
		QueueCap:    4096,
		Weights:     map[string]float64{"alpha": 2, "beta": 1},
	})
	for i := 0; i < 900; i++ {
		if _, err := s.Submit(Job{Tenant: "alpha", VCPUs: 1, EstSeconds: 1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1800; i++ {
		if _, err := s.Submit(Job{Tenant: "beta", VCPUs: 1, EstSeconds: 1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Synchronous rounds: every dispatched job takes one second, so
	// round t completes round t-1's slots and refills the budget.
	var inflight []*Job
	for round := 0; round < 100; round++ {
		now := float64(round)
		for _, j := range inflight {
			if err := s.Complete(j.ID, now, 0); err != nil {
				t.Fatal(err)
			}
		}
		inflight = inflight[:0]
		for {
			j, ok := s.Next(now)
			if !ok {
				break
			}
			inflight = append(inflight, j)
		}
	}
	served := map[string]float64{}
	for _, st := range s.Stats() {
		served[st.Tenant] = st.ServedVCPUSeconds
	}
	if served["alpha"] <= 0 || served["beta"] <= 0 {
		t.Fatalf("a tenant got no service: %+v", served)
	}
	if ratio := served["alpha"] / served["beta"]; math.Abs(ratio-2) > 0.1 {
		t.Fatalf("served ratio alpha/beta = %.3f, want ~2 (served %+v)", ratio, served)
	}
}

// TestAdmissionControlBoundsQueues saturates one tenant's queue and
// checks the typed rejection, that an idle tenant is still admitted,
// and that the hog's backlog cannot starve the idle tenant's job.
func TestAdmissionControlBoundsQueues(t *testing.T) {
	s := NewScheduler(Config{BudgetVCPUs: 8, QueueCap: 2})

	if _, err := s.Submit(Job{Tenant: "hog", VCPUs: 9}, 0); err == nil {
		t.Fatal("over-budget job admitted")
	} else {
		var tooLarge *ErrJobTooLarge
		if !errors.As(err, &tooLarge) || tooLarge.VCPUs != 9 || tooLarge.Budget != 8 {
			t.Fatalf("want ErrJobTooLarge{9, 8}, got %v", err)
		}
	}

	// One hog job dispatches (filling the budget), two queue at the cap;
	// the next submit is the 429 path.
	if _, err := s.Submit(Job{Tenant: "hog", VCPUs: 8, EstSeconds: 1}, 0); err != nil {
		t.Fatal(err)
	}
	first, ok := s.Next(0)
	if !ok {
		t.Fatal("nothing dispatched from a non-empty queue")
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Job{Tenant: "hog", VCPUs: 8, EstSeconds: 1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(Job{Tenant: "hog", VCPUs: 8, EstSeconds: 1}, 0)
	var sat *ErrTenantSaturated
	if !errors.As(err, &sat) {
		t.Fatalf("want ErrTenantSaturated, got %v", err)
	}
	if sat.Tenant != "hog" || sat.Cap != 2 {
		t.Fatalf("rejection carries %+v, want tenant hog cap 2", sat)
	}

	// The saturated hog does not affect the idle tenant's admission...
	idle, err := s.Submit(Job{Tenant: "idle", VCPUs: 1, EstSeconds: 1}, 0)
	if err != nil {
		t.Fatalf("idle tenant rejected alongside a saturated one: %v", err)
	}
	// ...nor can the hog's backlog head-of-line-block it: the idle job
	// must dispatch before the hog's queue drains.
	inflight := []*Job{first}
	now := 0.0
	idleDispatched := false
	for round := 0; round < 4 && !idleDispatched; round++ {
		now++
		for _, j := range inflight {
			if err := s.Complete(j.ID, now, 0); err != nil {
				t.Fatal(err)
			}
		}
		inflight = inflight[:0]
		for {
			j, ok := s.Next(now)
			if !ok {
				break
			}
			inflight = append(inflight, j)
			if j.ID == idle.ID {
				idleDispatched = true
			}
		}
	}
	if !idleDispatched {
		t.Fatal("idle tenant's job never dispatched while the hog drained")
	}
	for _, st := range s.Stats() {
		switch st.Tenant {
		case "hog":
			if st.Rejected != 1 {
				t.Fatalf("hog rejected = %d, want 1", st.Rejected)
			}
		case "idle":
			if st.Rejected != 0 {
				t.Fatalf("idle rejected = %d, want 0", st.Rejected)
			}
		}
	}
}

// TestPriorityFIFOWithinTenantDeterministic pins the within-tenant
// order — priority descending, FIFO among equals — and that the whole
// dispatch sequence is a pure function of the submissions under a
// seeded clock.
func TestPriorityFIFOWithinTenantDeterministic(t *testing.T) {
	dispatchOrder := func() []string {
		s := NewScheduler(Config{BudgetVCPUs: 1})
		clk := xrand.New(11) // seeded clock: jittered but reproducible stamps
		now := 0.0
		for _, sub := range []struct {
			id  string
			pri int
		}{
			{"a", 0}, {"b", 5}, {"c", 0}, {"d", 5}, {"e", 1},
		} {
			now += clk.Float64() * 0.001
			if _, err := s.Submit(Job{ID: sub.id, Tenant: "t", VCPUs: 1, EstSeconds: 1, Priority: sub.pri}, now); err != nil {
				t.Fatal(err)
			}
		}
		var order []string
		for {
			j, ok := s.Next(now)
			if !ok {
				break
			}
			order = append(order, j.ID)
			now++
			if err := s.Complete(j.ID, now, 0); err != nil {
				t.Fatal(err)
			}
		}
		return order
	}
	want := []string{"b", "d", "e", "a", "c"}
	first := dispatchOrder()
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("dispatch order %v, want %v", first, want)
	}
	if again := dispatchOrder(); !reflect.DeepEqual(first, again) {
		t.Fatalf("dispatch order not deterministic: %v then %v", first, again)
	}
}

func TestSchedulerCompleteGuards(t *testing.T) {
	s := NewScheduler(Config{BudgetVCPUs: 2})
	if err := s.Complete("nope", 0, 0); err == nil {
		t.Fatal("completing an unknown job succeeded")
	}
	job, err := s.Submit(Job{Tenant: "t", VCPUs: 1, EstSeconds: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(job.ID, 0, 0); err == nil {
		t.Fatal("completing an undispatched job succeeded")
	}
	if _, ok := s.Next(0); !ok {
		t.Fatal("no dispatch")
	}
	if err := s.Complete(job.ID, 1, 0); err != nil {
		t.Fatal(err)
	}
	if s.UsedVCPUs() != 0 {
		t.Fatalf("used vCPUs = %d after last completion", s.UsedVCPUs())
	}
}

func TestJainIndex(t *testing.T) {
	even := []TenantStat{
		{Tenant: "a", Weight: 1, Submitted: 1, ServedVCPUSeconds: 10},
		{Tenant: "b", Weight: 1, Submitted: 1, ServedVCPUSeconds: 10},
	}
	if got := JainIndex(even); math.Abs(got-1) > 1e-9 {
		t.Fatalf("even shares: jain = %v, want 1", got)
	}
	skew := []TenantStat{
		{Tenant: "a", Weight: 1, Submitted: 1, ServedVCPUSeconds: 10},
		{Tenant: "b", Weight: 1, Submitted: 1, ServedVCPUSeconds: 0},
	}
	if got := JainIndex(skew); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("one-sided shares: jain = %v, want 0.5", got)
	}
	// Weight-normalized: twice the service at twice the weight is fair.
	weighted := []TenantStat{
		{Tenant: "a", Weight: 2, Submitted: 1, ServedVCPUSeconds: 20},
		{Tenant: "b", Weight: 1, Submitted: 1, ServedVCPUSeconds: 10},
	}
	if got := JainIndex(weighted); math.Abs(got-1) > 1e-9 {
		t.Fatalf("weighted shares: jain = %v, want 1", got)
	}
	// Tenants that never submitted are excluded, not counted as starved.
	if got := JainIndex([]TenantStat{{Tenant: "idle"}}); got != 1 {
		t.Fatalf("idle-only stats: jain = %v, want 1", got)
	}
}
