package service

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/xrand"
)

// Arrival is one open-loop request: a RunSpec arriving at a point on
// the traffic clock. The spec is the same wire shape POST /v1/runs
// decodes — the traffic generator speaks the public API.
type Arrival struct {
	At   float64      `json:"at"`
	Spec core.RunSpec `json:"spec"`
}

// TaskShare weights one task in the generated mix.
type TaskShare struct {
	Task   string
	Weight float64
	// Size overrides the task's default input size; <= 0 keeps it.
	Size int
}

// TrafficConfig shapes the synthetic workload.
type TrafficConfig struct {
	// Seed derives the whole stream; equal configs generate identical
	// traffic.
	Seed uint64
	// Jobs is the number of arrivals; 0 means 256.
	Jobs int
	// Rate is the mean arrival rate in jobs per second; 0 means 1.
	Rate float64
	// Tenants are drawn uniformly per arrival; empty means the four
	// default tenants.
	Tenants []string
	// Mix is the task mix; empty means DefaultMix(). Weights need not
	// sum to 1.
	Mix []TaskShare
	// Paradigm fixes every spec's paradigm; empty draws script or
	// workflow per job.
	Paradigm string
}

// DefaultMix is a heavy-tailed mix over the four registered tasks:
// mostly cheap DICE/WEF traffic with a tail of expensive KGE and GOTTA
// jobs, the "many notebooks, few heavy training jobs" shape shared
// clusters see.
func DefaultMix() []TaskShare {
	return []TaskShare{
		{Task: "dice", Weight: 0.50},
		{Task: "wef", Weight: 0.27},
		{Task: "kge", Weight: 0.15},
		{Task: "gotta", Weight: 0.08},
	}
}

// workerTail is the heavy-tailed per-job vCPU demand: most jobs ask
// for one worker, a few ask for eight.
var workerTail = []struct {
	workers int
	weight  float64
}{
	{1, 0.55}, {2, 0.25}, {4, 0.14}, {8, 0.06},
}

// GenerateTraffic produces a deterministic open-loop arrival stream:
// Poisson arrivals (exponential inter-arrival gaps at cfg.Rate) with
// task, tenant, paradigm and worker demand drawn independently per
// job. Arrivals are returned in time order.
func GenerateTraffic(cfg TrafficConfig) ([]Arrival, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 256
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []string{"ds-team", "ml-team", "bi-team", "adhoc"}
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix()
	}
	taskWeights := make([]float64, len(cfg.Mix))
	for i, m := range cfg.Mix {
		if m.Task == "" || m.Weight <= 0 {
			return nil, fmt.Errorf("service: bad mix entry %+v", m)
		}
		taskWeights[i] = m.Weight
	}
	workerWeights := make([]float64, len(workerTail))
	for i, w := range workerTail {
		workerWeights[i] = w.weight
	}
	rng := xrand.New(cfg.Seed)
	tArr, tTask, tTen, tPar, tWork := rng.Split(), rng.Split(), rng.Split(), rng.Split(), rng.Split()

	out := make([]Arrival, 0, cfg.Jobs)
	now := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		// Exponential gap; 1-u is in (0, 1], keeping the log finite.
		now += -math.Log(1-tArr.Float64()) / cfg.Rate
		mix := cfg.Mix[tTask.WeightedIndex(taskWeights)]
		paradigm := cfg.Paradigm
		if paradigm == "" {
			if tPar.Bool(0.5) {
				paradigm = "script"
			} else {
				paradigm = "workflow"
			}
		}
		spec := core.RunSpec{
			APIVersion: core.SpecVersion,
			Task:       mix.Task,
			Paradigm:   paradigm,
			Size:       mix.Size,
			Seed:       cfg.Seed,
			Workers:    workerTail[tWork.WeightedIndex(workerWeights)].workers,
			Tenant:     xrand.Choice(tTen, cfg.Tenants),
		}
		out = append(out, Arrival{At: now, Spec: spec})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// RescaleRate returns a copy of arrivals with every timestamp scaled
// so the stream's mean rate becomes rate. Reusing one job sequence
// across a load sweep keeps the mixes identical between points — only
// the arrival tempo changes.
func RescaleRate(arrivals []Arrival, oldRate, rate float64) []Arrival {
	out := make([]Arrival, len(arrivals))
	copy(out, arrivals)
	if rate <= 0 || oldRate <= 0 {
		return out
	}
	f := oldRate / rate
	for i := range out {
		out[i].At *= f
	}
	return out
}
