// Package service is the multi-tenant serving tier: a fair-share
// scheduler with admission control in front of the task engines, the
// long-running piece the ROADMAP's "millions of users" north star
// needs. The paper's GUI-workflow systems are exactly this shape — one
// shared cluster, many concurrent user sessions — and live or die on
// how fairly they schedule them.
//
// The package splits in two. Scheduler is the pure, deterministic
// core: per-tenant bounded FIFO queues, weighted fair-share dispatch
// by virtual-time (least attained weighted service) accounting over
// the admitted vCPU budget, and typed admission errors. Service wraps
// it with goroutines and a Runner to execute real core runs; Simulate
// drives it open-loop inside a discrete-event simulation for the
// serving experiment. Both paths exercise the same scheduling code, so
// the curves the experiment reports describe the scheduler the server
// actually runs.
package service

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Config sizes the scheduler.
type Config struct {
	// BudgetVCPUs is the admitted vCPU budget jobs are packed into;
	// 0 uses the paper cluster's worker vCPUs (32), or Nodes×8 when
	// the service fronts a sharded cluster.
	BudgetVCPUs int
	// Nodes sizes the budget from a simulated node count instead of
	// the paper cluster when BudgetVCPUs is 0: each node contributes
	// cluster.NodeVCPUs. Ignored when BudgetVCPUs is set.
	Nodes int
	// QueueCap bounds each tenant's pending queue; a submit beyond it
	// is rejected with ErrTenantSaturated. 0 means 64.
	QueueCap int
	// DefaultWeight is the fair-share weight of tenants absent from
	// Weights; 0 means 1.
	DefaultWeight float64
	// Weights maps tenant names to fair-share weights. A tenant with
	// weight 2 converges to twice the admitted vCPU-seconds of a
	// weight-1 tenant when both stay backlogged.
	Weights map[string]float64
}

func (c Config) normalize() Config {
	if c.BudgetVCPUs <= 0 {
		if c.Nodes > 0 {
			c.BudgetVCPUs = c.Nodes * cluster.NodeVCPUs
		} else {
			c.BudgetVCPUs = cluster.PaperWorkerVCPUs
		}
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	return c
}

// Job is one schedulable run request.
type Job struct {
	// ID identifies the job to Complete; must be unique among live jobs.
	ID string
	// Tenant attributes the job; empty means core.DefaultTenant.
	Tenant string
	// Priority orders the job within its tenant's queue: higher first,
	// FIFO among equals. Cross-tenant order is fair share only.
	Priority int
	// VCPUs is the job's worker demand; 0 means 1. Must fit the budget.
	VCPUs int
	// EstSeconds is the expected service time used for vCPU-second
	// accounting; <= 0 charges one unit, degrading accounting to
	// admitted-vCPU fair share (the live server's mode, where durations
	// are unknown at dispatch).
	EstSeconds float64
	// Spec carries the originating request for executors.
	Spec core.RunSpec

	// SubmitAt and DispatchAt are stamped by the scheduler.
	SubmitAt   float64
	DispatchAt float64
	seq        int64
	inflight   bool
}

func (j Job) cost() float64 {
	est := j.EstSeconds
	if est <= 0 {
		est = 1
	}
	return float64(j.VCPUs) * est
}

// ErrTenantSaturated is the admission-control rejection: the tenant's
// bounded queue is full. It maps to HTTP 429. Other tenants' queues
// are unaffected — saturation never head-of-line-blocks across
// tenants.
type ErrTenantSaturated struct {
	Tenant string
	Cap    int
}

func (e *ErrTenantSaturated) Error() string {
	return fmt.Sprintf("service: tenant %q queue saturated (cap %d)", e.Tenant, e.Cap)
}

// ErrJobTooLarge rejects a job whose vCPU demand can never fit the
// budget; queueing it would deadlock its tenant's queue.
type ErrJobTooLarge struct {
	VCPUs  int
	Budget int
}

func (e *ErrJobTooLarge) Error() string {
	return fmt.Sprintf("service: job needs %d vCPUs, budget is %d", e.VCPUs, e.Budget)
}

// tenant is one tenant's scheduler state.
type tenant struct {
	name   string
	weight float64
	// queue holds pending jobs ordered by (priority desc, seq asc) —
	// sorted on insert, so the head is always next.
	queue []*Job
	// vtime is attained weighted service: admitted vCPU-seconds over
	// weight. Dispatch picks the backlogged tenant with minimal vtime.
	vtime float64

	submitted  int64
	rejected   int64
	dispatched int64
	completed  int64
	inflight   int
	// servedCost is completed (admitted) vCPU-seconds, the fairness
	// measure Jain's index is computed over.
	servedCost float64
}

// Scheduler is the deterministic fair-share core. It is not
// goroutine-safe; Service adds the locking.
type Scheduler struct {
	cfg     Config
	tenants map[string]*tenant
	names   []string // sorted; deterministic iteration
	jobs    map[string]*Job
	nextSeq int64
	used    int // vCPUs currently dispatched
}

// NewScheduler builds an empty scheduler.
func NewScheduler(cfg Config) *Scheduler {
	return &Scheduler{
		cfg:     cfg.normalize(),
		tenants: make(map[string]*tenant),
		jobs:    make(map[string]*Job),
	}
}

// Budget returns the admitted vCPU budget.
func (s *Scheduler) Budget() int { return s.cfg.BudgetVCPUs }

func (s *Scheduler) tenantFor(name string) *tenant {
	if name == "" {
		name = core.DefaultTenant
	}
	t, ok := s.tenants[name]
	if !ok {
		w := s.cfg.DefaultWeight
		if ww, ok := s.cfg.Weights[name]; ok && ww > 0 {
			w = ww
		}
		t = &tenant{name: name, weight: w}
		s.tenants[name] = t
		s.names = append(s.names, name)
		sort.Strings(s.names)
		// A tenant arriving (or returning) with stale vtime would
		// otherwise monopolize the budget until it caught up; start it
		// at the current virtual time instead.
		t.vtime = s.minActiveVtime()
	}
	return t
}

// minActiveVtime is the virtual-time floor: the minimum vtime over
// tenants with work queued or in flight, 0 when idle.
func (s *Scheduler) minActiveVtime() float64 {
	min, seen := 0.0, false
	for _, name := range s.names {
		t := s.tenants[name]
		if len(t.queue) == 0 && t.inflight == 0 {
			continue
		}
		if !seen || t.vtime < min {
			min, seen = t.vtime, true
		}
	}
	return min
}

// Submit queues the job, applying admission control. The returned job
// is the scheduler's stamped copy. now is the submit stamp (sim
// seconds or wall seconds — the scheduler only records it).
func (s *Scheduler) Submit(j Job, now float64) (*Job, error) {
	if j.VCPUs <= 0 {
		j.VCPUs = 1
	}
	if j.VCPUs > s.cfg.BudgetVCPUs {
		return nil, &ErrJobTooLarge{VCPUs: j.VCPUs, Budget: s.cfg.BudgetVCPUs}
	}
	t := s.tenantFor(j.Tenant)
	j.Tenant = t.name
	if len(t.queue) >= s.cfg.QueueCap {
		t.rejected++
		return nil, &ErrTenantSaturated{Tenant: t.name, Cap: s.cfg.QueueCap}
	}
	if j.ID == "" {
		j.ID = fmt.Sprintf("%s-%d", t.name, s.nextSeq)
	}
	if _, dup := s.jobs[j.ID]; dup {
		return nil, fmt.Errorf("service: duplicate job id %q", j.ID)
	}
	j.SubmitAt = now
	j.seq = s.nextSeq
	s.nextSeq++
	job := &j
	s.jobs[job.ID] = job
	// Insertion keeping (priority desc, seq asc): stable FIFO within a
	// priority class.
	idx := sort.Search(len(t.queue), func(i int) bool {
		q := t.queue[i]
		return q.Priority < job.Priority
	})
	t.queue = append(t.queue, nil)
	copy(t.queue[idx+1:], t.queue[idx:])
	t.queue[idx] = job
	t.submitted++
	return job, nil
}

// Next pops the next job to dispatch, or false when nothing fits the
// remaining budget. The pick is the minimal-vtime tenant whose queue
// head fits (ties broken by tenant name, so dispatch order is a pure
// function of scheduler history). The tenant is charged the job's
// weighted cost at dispatch.
func (s *Scheduler) Next(now float64) (*Job, bool) {
	var pick *tenant
	for _, name := range s.names {
		t := s.tenants[name]
		if len(t.queue) == 0 || t.queue[0].VCPUs > s.cfg.BudgetVCPUs-s.used {
			continue
		}
		if pick == nil || t.vtime < pick.vtime {
			pick = t
		}
	}
	if pick == nil {
		return nil, false
	}
	job := pick.queue[0]
	copy(pick.queue, pick.queue[1:])
	pick.queue = pick.queue[:len(pick.queue)-1]
	job.DispatchAt = now
	job.inflight = true
	s.used += job.VCPUs
	pick.inflight++
	pick.dispatched++
	pick.vtime += job.cost() / pick.weight
	return job, true
}

// Complete releases a dispatched job's vCPUs. actualSeconds, when
// > 0, replaces the dispatch-time estimate in the tenant's attained
// service (the true-up that keeps live-mode accounting honest); <= 0
// keeps the estimate.
func (s *Scheduler) Complete(id string, now, actualSeconds float64) error {
	job, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("service: complete of unknown job %q", id)
	}
	if !job.inflight {
		return fmt.Errorf("service: job %q completed before dispatch", id)
	}
	delete(s.jobs, id)
	t := s.tenants[job.Tenant]
	s.used -= job.VCPUs
	t.inflight--
	t.completed++
	served := job.cost()
	if actualSeconds > 0 {
		actual := float64(job.VCPUs) * actualSeconds
		t.vtime += (actual - served) / t.weight
		served = actual
	}
	t.servedCost += served
	return nil
}

// TenantStat is one tenant's externally visible accounting snapshot.
type TenantStat struct {
	Tenant     string  `json:"tenant"`
	Weight     float64 `json:"weight"`
	Queued     int     `json:"queued"`
	Inflight   int     `json:"inflight"`
	Submitted  int64   `json:"submitted"`
	Rejected   int64   `json:"rejected"`
	Dispatched int64   `json:"dispatched"`
	Completed  int64   `json:"completed"`
	// ServedVCPUSeconds is completed admitted work, the fairness
	// measure.
	ServedVCPUSeconds float64 `json:"served_vcpu_seconds"`
	VirtualTime       float64 `json:"virtual_time"`
}

// Stats snapshots every tenant, sorted by name.
func (s *Scheduler) Stats() []TenantStat {
	out := make([]TenantStat, 0, len(s.names))
	for _, name := range s.names {
		t := s.tenants[name]
		out = append(out, TenantStat{
			Tenant: t.name, Weight: t.weight,
			Queued: len(t.queue), Inflight: t.inflight,
			Submitted: t.submitted, Rejected: t.rejected,
			Dispatched: t.dispatched, Completed: t.completed,
			ServedVCPUSeconds: t.servedCost, VirtualTime: t.vtime,
		})
	}
	return out
}

// UsedVCPUs reports currently dispatched vCPUs.
func (s *Scheduler) UsedVCPUs() int { return s.used }

// JainIndex computes Jain's fairness index over per-tenant
// weight-normalized served vCPU-seconds: 1 is perfectly fair, 1/n is
// maximally unfair. Tenants that never submitted are excluded.
func JainIndex(stats []TenantStat) float64 {
	var sum, sumSq float64
	n := 0
	for _, st := range stats {
		if st.Submitted == 0 {
			continue
		}
		x := st.ServedVCPUSeconds / st.Weight
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}
