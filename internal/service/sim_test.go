package service

import (
	"math"
	"reflect"
	"testing"
)

// simCosts is a synthetic per-task service-time table; the serving
// experiment uses measured core run times instead.
var simCosts = map[string]float64{"dice": 0.4, "wef": 0.3, "kge": 2.5, "gotta": 1.5}

func tableCost(j *Job) float64 { return simCosts[j.Spec.Task] }

func TestGenerateTrafficDeterministic(t *testing.T) {
	cfg := TrafficConfig{Seed: 7, Jobs: 64, Rate: 2}
	a, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different traffic")
	}
	if len(a) != 64 {
		t.Fatalf("got %d arrivals, want 64", len(a))
	}
	last := 0.0
	for i, arr := range a {
		if arr.At < last {
			t.Fatalf("arrival %d out of order: %v after %v", i, arr.At, last)
		}
		last = arr.At
		if _, ok := simCosts[arr.Spec.Task]; !ok {
			t.Fatalf("arrival %d drew task %q outside the default mix", i, arr.Spec.Task)
		}
		switch arr.Spec.Workers {
		case 1, 2, 4, 8:
		default:
			t.Fatalf("arrival %d drew %d workers outside the tail", i, arr.Spec.Workers)
		}
		if arr.Spec.Tenant == "" || arr.Spec.Paradigm == "" {
			t.Fatalf("arrival %d underspecified: %+v", i, arr.Spec)
		}
	}

	// Rescaling to twice the rate halves every timestamp and leaves the
	// job sequence untouched.
	fast := RescaleRate(a, 2, 4)
	for i := range fast {
		if math.Abs(fast[i].At-a[i].At/2) > 1e-12 {
			t.Fatalf("rescale broke timestamp %d: %v vs %v", i, fast[i].At, a[i].At)
		}
		if !reflect.DeepEqual(fast[i].Spec, a[i].Spec) {
			t.Fatalf("rescale changed spec %d", i)
		}
	}
}

func TestSimulateDrainsAndIsDeterministic(t *testing.T) {
	arrivals, err := GenerateTraffic(TrafficConfig{Seed: 3, Jobs: 120, Rate: 50})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{QueueCap: 8}
	rep, err := Simulate(cfg, arrivals, tableCost)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals != 120 {
		t.Fatalf("arrivals = %d, want 120", rep.Arrivals)
	}
	if rep.Admitted+rep.Rejected != rep.Arrivals {
		t.Fatalf("admitted %d + rejected %d != arrivals %d", rep.Admitted, rep.Rejected, rep.Arrivals)
	}
	if rep.Completed != rep.Admitted {
		t.Fatalf("drained sim completed %d of %d admitted", rep.Completed, rep.Admitted)
	}
	if rep.Rejected == 0 {
		t.Fatal("overload at queue cap 8 rejected nothing")
	}
	if rep.Makespan <= 0 || rep.P50Latency <= 0 || rep.P99Latency < rep.P50Latency {
		t.Fatalf("implausible latency summary: %+v", rep)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", rep.Utilization)
	}
	again, err := Simulate(cfg, arrivals, tableCost)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", rep, again)
	}
}

// TestSimulateFairAtOverload is the acceptance check at simulation
// level: equal-weight tenants under heavy overload still share within
// Jain >= 0.9, because admission control clips every tenant's backlog
// at the same queue depth and dispatch follows virtual time.
func TestSimulateFairAtOverload(t *testing.T) {
	arrivals, err := GenerateTraffic(TrafficConfig{Seed: 9, Jobs: 400, Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(Config{}, arrivals, tableCost)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("the overload point never saturated admission control")
	}
	if rep.Jain < 0.9 {
		t.Fatalf("jain = %.3f at overload with equal weights, want >= 0.9 (tenants %+v)", rep.Jain, rep.Tenants)
	}
}
