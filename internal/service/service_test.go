package service_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/service"

	_ "repro/internal/tasks/dice"
	_ "repro/internal/tasks/wef"
)

func TestServiceExecutesAndDrains(t *testing.T) {
	var mu sync.Mutex
	ran := map[string]int{}
	svc := service.New(service.Config{BudgetVCPUs: 4}, func(job *service.Job) error {
		mu.Lock()
		ran[job.Tenant]++
		mu.Unlock()
		return nil
	})
	for i := 0; i < 6; i++ {
		if _, err := svc.Submit(service.Job{Tenant: "a", VCPUs: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Submit(service.Job{Tenant: "b", VCPUs: 2}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Drain()
	mu.Lock()
	got := map[string]int{"a": ran["a"], "b": ran["b"]}
	mu.Unlock()
	if got["a"] != 6 || got["b"] != 6 {
		t.Fatalf("runner executions %+v, want 6 per tenant", got)
	}
	if used := svc.UsedVCPUs(); used != 0 {
		t.Fatalf("used vCPUs = %d after drain", used)
	}
	for _, st := range svc.Stats() {
		if st.Completed != 6 || st.Queued != 0 || st.Inflight != 0 {
			t.Fatalf("tenant %s not drained: %+v", st.Tenant, st)
		}
	}
	svc.Close()
	if _, err := svc.Submit(service.Job{Tenant: "a", VCPUs: 1}); err == nil {
		t.Fatal("submit after close accepted")
	}
}

func TestServiceRetainsJobErrors(t *testing.T) {
	svc := service.New(service.Config{BudgetVCPUs: 1}, func(job *service.Job) error {
		if job.Tenant == "bad" {
			return fmt.Errorf("boom")
		}
		return nil
	})
	bad, err := svc.Submit(service.Job{Tenant: "bad", VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	good, err := svc.Submit(service.Job{Tenant: "good", VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	if svc.JobErr(bad.ID) == nil {
		t.Fatal("failed job's error not retained")
	}
	if err := svc.JobErr(good.ID); err != nil {
		t.Fatalf("clean job carries error %v", err)
	}
}

// specDigests runs the spec directly through core and returns each
// paradigm's output digest — the ground truth the service path must
// reproduce bit-for-bit.
func specDigests(spec core.RunSpec) (map[string]string, error) {
	task, err := spec.NewTask()
	if err != nil {
		return nil, err
	}
	rc, err := spec.Config()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, p := range spec.Paradigms() {
		res, err := task.Run(p, rc)
		if err != nil {
			return nil, err
		}
		out[p.String()] = fmt.Sprintf("%016x", relation.Digest(res.Output))
	}
	return out, nil
}

// TestServicePathOutputsMatchDirectRuns is the golden check: task
// outputs produced under the scheduler (queueing, dispatch on a worker
// goroutine) are bit-identical to direct core runs of the same spec.
func TestServicePathOutputsMatchDirectRuns(t *testing.T) {
	specs := []core.RunSpec{
		{Task: "dice", Paradigm: "both", Size: 200},
		{Task: "wef", Paradigm: "both", Size: 120, Workers: 4, Seed: 3},
	}
	var mu sync.Mutex
	served := make(map[string]map[string]string)
	svc := service.New(service.Config{}, func(job *service.Job) error {
		d, err := specDigests(job.Spec)
		if err != nil {
			return err
		}
		mu.Lock()
		served[job.ID] = d
		mu.Unlock()
		return nil
	})
	ids := make(map[string]core.RunSpec)
	for _, spec := range specs {
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		job, err := svc.Submit(service.Job{Tenant: norm.Tenant, VCPUs: norm.Workers, Spec: norm})
		if err != nil {
			t.Fatal(err)
		}
		ids[job.ID] = norm
	}
	svc.Drain()
	for id, norm := range ids {
		if err := svc.JobErr(id); err != nil {
			t.Fatalf("service run of %s failed: %v", norm.Task, err)
		}
		direct, err := specDigests(norm)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		got := served[id]
		mu.Unlock()
		if !reflect.DeepEqual(got, direct) {
			t.Fatalf("%s: service-path digests %v != direct %v", norm.Task, got, direct)
		}
	}
}
