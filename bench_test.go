// Package repro_test holds the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation section
// (experiment IDs E1..E10, see DESIGN.md). Each benchmark regenerates
// its experiment's rows and reports the simulated execution times as
// custom metrics (sim-s suffixed), so `go test -bench=.` reproduces
// the full evaluation. Benchmarks default to a 10x-reduced dataset
// scale to keep wall-clock time low; set -benchscale=1 for paper-scale
// runs (the measured *shape* is the same — simulated time scales with
// the data, wall-clock stays small either way).
package repro_test

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/experiments"
)

var benchScale = flag.Int("benchscale", 10, "dataset shrink factor for benchmarks (1 = paper scale)")

func benchCfg() experiments.Config {
	return experiments.Config{Scale: *benchScale, Seed: 1}
}

// BenchmarkTable1LanguageEfficiency regenerates Table I: the KGE
// workflow with Python operators versus the variant whose join is nine
// Scala operators, at two data scales.
func BenchmarkTable1LanguageEfficiency(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PythonSecs, fmt.Sprintf("python@%d-sim-s", r.Products))
		b.ReportMetric(r.ScalaSecs, fmt.Sprintf("scala@%d-sim-s", r.Products))
	}
}

// BenchmarkFig12aLinesOfCode regenerates Figure 12a: implementation
// size of the four tasks under both paradigms.
func BenchmarkFig12aLinesOfCode(b *testing.B) {
	var rows []experiments.LoCRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig12a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.ScriptLoC), r.Task+"-script-loc")
		b.ReportMetric(float64(r.WorkflowLoC), r.Task+"-workflow-loc")
	}
}

// BenchmarkFig12bModularity regenerates Figure 12b: KGE execution time
// across workflow decompositions of 1..6 operators.
func BenchmarkFig12bModularity(b *testing.B) {
	var res *experiments.Fig12bResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig12b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Points {
		b.ReportMetric(p.Seconds, fmt.Sprintf("ops%d-sim-s", p.Ops))
	}
	b.ReportMetric(res.ScriptRef, "script-sim-s")
}

// reportScale emits a Figure 13 series as benchmark metrics.
func reportScale(b *testing.B, pts []experiments.ScalePoint) {
	b.Helper()
	for _, p := range pts {
		b.ReportMetric(p.Script, fmt.Sprintf("script@%d-sim-s", p.Size))
		b.ReportMetric(p.Workflow, fmt.Sprintf("workflow@%d-sim-s", p.Size))
		if !p.OutputsAgree {
			b.Fatalf("paradigms disagree at size %d", p.Size)
		}
	}
}

// BenchmarkFig13aDICEScale regenerates Figure 13a: DICE over growing
// datasets.
func BenchmarkFig13aDICEScale(b *testing.B) {
	var pts []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig13aDICE(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, pts)
}

// BenchmarkFig13bWEFScale regenerates Figure 13b: WEF training over
// growing tweet sets.
func BenchmarkFig13bWEFScale(b *testing.B) {
	var pts []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig13bWEF(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, pts)
}

// BenchmarkFig13cKGEScale regenerates Figure 13c: KGE over growing
// candidate sets.
func BenchmarkFig13cKGEScale(b *testing.B) {
	var pts []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig13cKGE(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, pts)
}

// BenchmarkFig13dGOTTAScale regenerates Figure 13d: GOTTA over growing
// paragraph counts.
func BenchmarkFig13dGOTTAScale(b *testing.B) {
	var pts []experiments.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig13dGOTTA(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportScale(b, pts)
}

// reportWorkers emits a Figure 14 series as benchmark metrics.
func reportWorkers(b *testing.B, pts []experiments.WorkerPoint) {
	b.Helper()
	for _, p := range pts {
		b.ReportMetric(p.Script, fmt.Sprintf("script@%dw-sim-s", p.Workers))
		b.ReportMetric(p.Workflow, fmt.Sprintf("workflow@%dw-sim-s", p.Workers))
	}
}

// BenchmarkFig14aDICEWorkers regenerates Figure 14a: DICE across
// worker counts.
func BenchmarkFig14aDICEWorkers(b *testing.B) {
	var pts []experiments.WorkerPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig14aDICE(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportWorkers(b, pts)
}

// BenchmarkFig14bGOTTAWorkers regenerates Figure 14b: GOTTA across
// worker counts.
func BenchmarkFig14bGOTTAWorkers(b *testing.B) {
	var pts []experiments.WorkerPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig14bGOTTA(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportWorkers(b, pts)
}

// BenchmarkFig14cKGEWorkers regenerates Figure 14c: KGE across worker
// counts.
func BenchmarkFig14cKGEWorkers(b *testing.B) {
	var pts []experiments.WorkerPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig14cKGE(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportWorkers(b, pts)
}

// BenchmarkAblationTorchPin quantifies Ray's 1-CPU torch pin on GOTTA.
func BenchmarkAblationTorchPin(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationTorchPin(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Seconds, "pinned-sim-s")
	b.ReportMetric(rows[1].Seconds, "unpinned-sim-s")
}

// BenchmarkAblationObjectStore sweeps the object store's transfer
// rates on GOTTA's script paradigm.
func BenchmarkAblationObjectStore(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationObjectStore(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, r := range rows {
		b.ReportMetric(r.Seconds, fmt.Sprintf("store%d-sim-s", i))
	}
}

// BenchmarkAblationSerde sweeps the workflow engine's serialization
// throughput on DICE.
func BenchmarkAblationSerde(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationSerde(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, r := range rows {
		b.ReportMetric(r.Seconds, fmt.Sprintf("serde%d-sim-s", i))
	}
}

// BenchmarkAblationBatching compares engine-managed batching against
// whole-table batches on DICE.
func BenchmarkAblationBatching(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationBatching(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Seconds, "auto-sim-s")
	b.ReportMetric(rows[1].Seconds, "wholetable-sim-s")
}

// BenchmarkExtSpreadsheetKGE regenerates the extension experiment: the
// KGE task under the spreadsheet paradigm next to script and workflow.
func BenchmarkExtSpreadsheetKGE(b *testing.B) {
	var pts []experiments.ThreeWayPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.ExtSpreadsheetKGE(experiments.Config{Scale: *benchScale * 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Spreadsheet, fmt.Sprintf("sheet@%d-sim-s", p.Size))
	}
}

// BenchmarkAutoTuneDICE regenerates the Aspect #2 tuner demonstration.
func BenchmarkAutoTuneDICE(b *testing.B) {
	var out *experiments.TuneOutcome
	for i := 0; i < b.N; i++ {
		var err error
		out, err = experiments.AutoTuneDICE(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(out.BaselineSeconds, "baseline-sim-s")
	b.ReportMetric(out.TunedSeconds, "tuned-sim-s")
}
