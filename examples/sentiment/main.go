// Sentiment: the paper's introductory example (Figures 1 and 2) — a
// sentiment/relevance classifier over wildfire tweets, built as the
// classic CountVectorizer -> TfidfTransformer -> SGDClassifier
// pipeline, trained and evaluated under the workflow paradigm with a
// live progress display, exactly the flow the Texera screenshot shows.
//
// Run with: go run ./examples/sentiment
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/datagen"
	"repro/internal/ml/feature"
	"repro/internal/ml/linear"
	"repro/internal/relation"
)

// trainOp is a blocking operator that fits the classifier on its
// buffered input and emits per-tweet predictions — the "train model"
// box of the paper's Figure 2 workflow.
type trainOp struct {
	out *relation.Schema
}

func (o *trainOp) Desc() dataflow.Desc {
	return dataflow.Desc{
		Name: "sentiment-train", Language: cost.Python,
		Ports: 1, BlockingPorts: []bool{true},
	}
}

func (o *trainOp) OutputSchema(in []*relation.Schema) (*relation.Schema, error) {
	return o.out, nil
}

func (o *trainOp) NewInstance() dataflow.Instance { return &trainInstance{op: o} }

type trainInstance struct {
	op   *trainOp
	rows []relation.Tuple
}

func (ti *trainInstance) Open(dataflow.ExecCtx) error { return nil }
func (ti *trainInstance) Process(ec dataflow.ExecCtx, _ int, rows []relation.Tuple) ([]relation.Tuple, error) {
	ti.rows = append(ti.rows, rows...)
	return nil, nil
}

func (ti *trainInstance) EndPort(ec dataflow.ExecCtx, _ int) ([]relation.Tuple, error) {
	texts := make([]string, len(ti.rows))
	gold := make([]bool, len(ti.rows))
	for i, r := range ti.rows {
		texts[i] = r.MustStr(1)
		gold[i] = r.MustBool(2)
	}
	hv, err := feature.NewHashingVectorizer(1 << 14)
	if err != nil {
		return nil, err
	}
	counts := hv.TransformAll(texts)
	tfidf := feature.FitTFIDF(counts)
	x := tfidf.TransformAll(counts)
	clf := &linear.SGDClassifier{Epochs: 5, Seed: 11}
	if err := clf.Fit(x, gold); err != nil {
		return nil, err
	}
	ec.AddWork(cost.Work{Interp: 0.02}.Scale(float64(len(texts))))
	out := make([]relation.Tuple, len(ti.rows))
	for i, r := range ti.rows {
		out[i] = relation.Tuple{r[0], r[1], gold[i], clf.Predict(x[i])}
	}
	return out, nil
}
func (ti *trainInstance) Close(dataflow.ExecCtx) error { return nil }

func main() {
	tweets := datagen.GenerateTweets(600, 13)
	schema := relation.MustSchema(
		relation.Field{Name: "id", Type: relation.Int},
		relation.Field{Name: "text", Type: relation.String},
		relation.Field{Name: "relevant", Type: relation.Bool},
	)
	src := relation.NewTable(schema)
	for _, t := range tweets {
		src.AppendUnchecked(relation.Tuple{t.ID, t.Text, !t.Framings[datagen.FramingIrrelevant]})
	}

	outSchema := relation.MustSchema(
		relation.Field{Name: "id", Type: relation.Int},
		relation.Field{Name: "text", Type: relation.String},
		relation.Field{Name: "gold", Type: relation.Bool},
		relation.Field{Name: "pred", Type: relation.Bool},
	)

	w := dataflow.New("sentiment")
	s := w.Source("tweets", src)
	train := w.Op(&trainOp{out: outSchema})
	correct := w.Op(dataflow.NewFilter("correct-predictions", cost.Python, func(r relation.Tuple) bool {
		return r.MustBool(2) == r.MustBool(3)
	}))
	sinkAll := w.Sink("predictions")
	sinkOK := w.Sink("correct")
	w.Connect(s, train, 0, dataflow.RoundRobin())
	w.Connect(train, correct, 0, dataflow.RoundRobin())
	w.Connect(train, sinkAll, 0, dataflow.RoundRobin())
	w.Connect(correct, sinkOK, 0, dataflow.RoundRobin())

	res, err := w.Run(context.Background(), dataflow.Config{})
	if err != nil {
		log.Fatal(err)
	}

	all := res.Tables["predictions"]
	ok := res.Tables["correct"]
	fmt.Printf("tweets: %d, correct predictions: %d (accuracy %.3f)\n",
		all.Len(), ok.Len(), float64(ok.Len())/float64(all.Len()))
	fmt.Println("\nper-operator data progress (paper Figure 9):")
	for _, n := range res.Trace.Nodes {
		fmt.Printf("  %-22s in=%-6d out=%-6d\n", n.Name, n.InTuples, n.OutTuples)
	}
	fmt.Printf("\nsimulated execution time: %.3f s\n", res.SimSeconds)
}
