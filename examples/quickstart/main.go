// Quickstart: the same tiny analysis implemented under both paradigms.
//
// A table of orders is filtered and aggregated twice: once as a
// GUI-style dataflow workflow (operators connected by links, pipelined
// execution, per-operator progress) and once as a notebook script
// (cells sharing one kernel). Both produce the same result; the
// simulated execution times differ by each paradigm's overheads.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/notebook"
	"repro/internal/relation"
)

func ordersTable() *relation.Table {
	schema := relation.MustSchema(
		relation.Field{Name: "order", Type: relation.Int},
		relation.Field{Name: "city", Type: relation.String},
		relation.Field{Name: "amount", Type: relation.Float},
	)
	t := relation.NewTable(schema)
	cities := []string{"irvine", "los angeles", "san diego"}
	for i := 0; i < 3000; i++ {
		t.AppendUnchecked(relation.Tuple{
			int64(i), cities[i%3], float64(5 + i%40),
		})
	}
	return t
}

func main() {
	orders := ordersTable()

	// --- Workflow paradigm ------------------------------------------------
	w := dataflow.New("quickstart")
	src := w.Source("orders", orders)
	big := w.Op(dataflow.NewFilter("big-orders", cost.Python, func(r relation.Tuple) bool {
		return r.MustFloat(2) >= 20
	}), dataflow.WithParallelism(2))
	agg := w.Op(dataflow.NewGroupBy("by-city", cost.Python,
		[]string{"city"},
		[]relation.Aggregate{
			{Func: relation.Count, As: "orders"},
			{Func: relation.Sum, Field: "amount", As: "revenue"},
		}), dataflow.WithParallelism(2))
	sink := w.Sink("result")
	w.Connect(src, big, 0, dataflow.RoundRobin())
	w.Connect(big, agg, 0, dataflow.HashPartition("city"))
	w.Connect(agg, sink, 0, dataflow.RoundRobin())

	wfRes, err := w.Run(context.Background(), dataflow.Config{})
	if err != nil {
		log.Fatal(err)
	}
	wfOut := wfRes.Tables["result"]
	if err := wfOut.SortBy("city"); err != nil {
		log.Fatal(err)
	}

	// --- Script paradigm ---------------------------------------------------
	nb := notebook.New("quickstart", nil)
	nb.Add(&notebook.Cell{
		Name:   "load",
		Source: `orders = pd.read_json("orders.jsonl", lines=True)`,
		Run: func(k *notebook.Kernel) error {
			k.Set("orders", orders)
			k.Charge(cost.Work{Interp: 0.02})
			return nil
		},
	})
	nb.Add(&notebook.Cell{
		Name: "analyze",
		Source: `big = orders[orders.amount >= 20]
result = big.groupby("city").agg(orders=("order", "count"), revenue=("amount", "sum"))`,
		Run: func(k *notebook.Kernel) error {
			v, err := k.Need("orders")
			if err != nil {
				return err
			}
			t := v.(*relation.Table)
			filtered := relation.Filter(t, func(r relation.Tuple) bool { return r.MustFloat(2) >= 20 })
			out, err := relation.GroupBy(filtered, []string{"city"}, []relation.Aggregate{
				{Func: relation.Count, As: "orders"},
				{Func: relation.Sum, Field: "amount", As: "revenue"},
			})
			if err != nil {
				return err
			}
			if err := out.SortBy("city"); err != nil {
				return err
			}
			k.Set("result", out)
			k.Charge(cost.Work{Interp: 0.6e-3}.Scale(float64(t.Len())))
			return nil
		},
	})
	if err := nb.RunAll(); err != nil {
		log.Fatal(err)
	}
	v, _ := nb.Kernel().Get("result")
	nbOut := v.(*relation.Table)

	// --- Compare ------------------------------------------------------------
	fmt.Println("result (both paradigms):")
	for _, r := range wfOut.Rows() {
		fmt.Printf("  %-12s orders=%-5d revenue=%.0f\n", r.MustStr(0), r.MustInt(1), r.MustFloat(2))
	}
	fmt.Println("outputs equal:", wfOut.Equal(nbOut))
	fmt.Printf("workflow simulated time: %8.3f s\n", wfRes.SimSeconds)
	fmt.Printf("notebook simulated time: %8.3f s\n", nb.Elapsed())
}
