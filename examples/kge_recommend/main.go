// KGE recommendation: the paper's multi-step inference task. Builds a
// synthetic product world with a pre-trained TransE embedding model,
// produces top-10 recommendations for a user under both paradigms, and
// shows the Table I effect: swapping the workflow's Python join
// operator for nine native Scala operators.
//
// Run with: go run ./examples/kge_recommend [-products 6800]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/tasks/kge"
)

func main() {
	products := flag.Int("products", 6800, "candidate product count")
	flag.Parse()

	task, err := kge.New(kge.Params{Products: *products, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	script, workflow, err := core.RunBoth(task, core.MustRunConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-10 recommendations for %s-category shopper (paradigms agree: %v):\n",
		task.World().UserCategory[task.World().Users[0]], script.Output.Equal(workflow.Output))
	for _, r := range script.Output.Rows() {
		fmt.Printf("  #%-2d %-12s %-24s dist=%.3f\n",
			r.MustInt(0), r.MustStr(1), r.MustStr(2), r.MustFloat(3))
	}
	fmt.Printf("in-category hit rate: %.0f%%\n\n", 100*script.Quality["hit_rate"])

	fmt.Printf("%-22s %12s\n", "implementation", "sim time (s)")
	fmt.Printf("%-22s %12.2f\n", "script (pandas+ray)", script.SimSeconds)
	fmt.Printf("%-22s %12.2f\n", "workflow (3 py ops)", workflow.SimSeconds)

	// Table I: the Scala join variant.
	scalaTask, err := kge.New(kge.Params{Products: *products, Seed: 9, Variant: kge.Variant{Ops: 3, ScalaJoin: true}})
	if err != nil {
		log.Fatal(err)
	}
	scala, err := scalaTask.Run(core.Workflow, core.MustRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12.2f   (join as 9 native Scala operators, %d ops total)\n",
		"workflow (scala join)", scala.SimSeconds, scala.Operators)
	fmt.Printf("\nScala join speedup over Python join: %.1f%%\n",
		100*(workflow.SimSeconds-scala.SimSeconds)/workflow.SimSeconds)
}
