// Autotune: the engine-side resource tuning of the paper's Aspect #2.
// A skewed three-stage pipeline is profiled once at one worker per
// operator; the tuner then allocates a CPU budget across the operators
// on the simulator, and the workflow is re-run with the recommended
// parallelism to confirm the speedup — the burden the script paradigm
// leaves to the user ("manually search for an optimal configuration").
//
// Run with: go run ./examples/autotune [-budget 12]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/relation"
)

func buildPipeline(workers map[string]int) *dataflow.Workflow {
	schema := relation.MustSchema(
		relation.Field{Name: "id", Type: relation.Int},
		relation.Field{Name: "text", Type: relation.String},
	)
	in := relation.NewTable(schema)
	for i := 0; i < 30000; i++ {
		in.AppendUnchecked(relation.Tuple{int64(i), "a short synthetic document"})
	}

	w := dataflow.New("autotune-demo")
	src := w.Source("docs", in)
	prev := src
	// Three stages with very different per-tuple costs: tokenize is
	// cheap, embed is the bottleneck, score is moderate.
	stages := []struct {
		name string
		work cost.Work
	}{
		{"tokenize", cost.Work{Interp: 0.5e-3}},
		{"embed", cost.Work{Interp: 8e-3, Mem: 1e-3}},
		{"score", cost.Work{Interp: 2e-3}},
	}
	for _, s := range stages {
		op := dataflow.NewMap(s.name, cost.Python, schema, func(r relation.Tuple) ([]relation.Tuple, error) {
			return []relation.Tuple{r}, nil
		})
		op.Work = s.work
		par := 1
		if workers != nil {
			par = workers[s.name]
		}
		id := w.Op(op, dataflow.WithParallelism(par))
		w.Connect(prev, id, 0, dataflow.RoundRobin())
		prev = id
	}
	w.Connect(prev, w.Sink("out"), 0, dataflow.RoundRobin())
	return w
}

func main() {
	budget := flag.Int("budget", 12, "total worker budget for the tuner")
	flag.Parse()

	// 1. Profile at one worker per operator.
	profile, err := buildPipeline(nil).Run(context.Background(), dataflow.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled baseline: %.2f simulated s\n\n", profile.SimSeconds)

	// 2. Tune on the simulator.
	tuned, err := dataflow.AutoTune(profile.Trace, cost.Default(), *budget)
	if err != nil {
		log.Fatal(err)
	}
	workers := map[string]int{}
	fmt.Printf("tuner recommendation (budget %d):\n", *budget)
	for _, n := range profile.Trace.Nodes {
		if n.Kind != "operator" {
			continue
		}
		workers[n.Name] = tuned.Workers[n.ID]
		fmt.Printf("  %-10s -> %d workers\n", n.Name, tuned.Workers[n.ID])
	}
	fmt.Printf("tuner estimate: %.2f simulated s\n\n", tuned.Seconds)

	// 3. Re-run for real with the recommended parallelism.
	rerun, err := buildPipeline(workers).Run(context.Background(), dataflow.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-run with recommendation: %.2f simulated s (%.1fx faster than baseline)\n",
		rerun.SimSeconds, profile.SimSeconds/rerun.SimSeconds)
	fmt.Println("\noperator timeline after tuning:")
	spans, err := dataflow.Timeline(rerun.Trace, cost.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dataflow.RenderTimeline(spans, 56))
}
