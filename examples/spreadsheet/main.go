// Spreadsheet: the third paradigm the paper's introduction names. A
// small wildfire-donation ledger is built on the spreadsheet engine:
// literals, formulas, eager recalculation on edit, error values and
// cycle detection — then an intentionally large RANK column shows the
// quadratic wall that keeps the paradigm out of the paper's scale
// experiments.
//
// Run with: go run ./examples/spreadsheet
package main

import (
	"fmt"
	"log"

	"repro/internal/sheet"
)

func main() {
	s := sheet.New(nil)

	// A ledger: donor, amount, matched amount.
	rows := []struct {
		donor  string
		amount float64
	}{
		{"ann", 120}, {"bob", 75}, {"cat", 240}, {"dan", 60}, {"eve", 500},
	}
	for i, r := range rows {
		must(s.Set(fmt.Sprintf("A%d", i+1), r.donor))
		must(s.Set(fmt.Sprintf("B%d", i+1), r.amount))
		// Employer match: 50% of gifts of 100 or more.
		must(s.SetFormula(fmt.Sprintf("C%d", i+1),
			fmt.Sprintf(`=IF(B%d>=100, B%d/2, 0)`, i+1, i+1)))
	}
	must(s.SetFormula("B7", "=SUM(B1:B5)"))
	must(s.SetFormula("C7", "=SUM(C1:C5)"))
	must(s.SetFormula("D7", "=B7+C7"))
	must(s.SetFormula("D8", `="average gift: " & AVERAGE(B1:B5)`))

	fmt.Println("ledger:")
	for i := range rows {
		a, _ := s.Get(fmt.Sprintf("A%d", i+1))
		b, _ := s.Get(fmt.Sprintf("B%d", i+1))
		c, _ := s.Get(fmt.Sprintf("C%d", i+1))
		fmt.Printf("  %-4s gave %6s, matched %6s\n", a, b, c)
	}
	total, _ := s.Get("D7")
	avg, _ := s.Get("D8")
	fmt.Printf("total with match: %s   (%s)\n\n", total, avg)

	// Edit one cell: everything downstream recalculates eagerly.
	must(s.Set("B2", 300.0))
	total, _ = s.Get("D7")
	fmt.Printf("after bob ups his gift to 300: total = %s\n\n", total)

	// Error values and cycles behave like a real spreadsheet.
	must(s.SetFormula("E1", "=B1/0"))
	v, _ := s.Get("E1")
	fmt.Println("B1/0 =", v)
	must(s.SetFormula("F1", "=F2+1"))
	must(s.SetFormula("F2", "=F1+1"))
	v, _ = s.Get("F1")
	fmt.Println("circular F1 =", v)

	// The scaling wall: a RANK column re-reads its whole range per
	// cell, so ranking n rows costs O(n^2).
	for _, n := range []int{500, 1000, 2000} {
		big := sheet.New(nil)
		entries := map[string]any{}
		for i := 1; i <= n; i++ {
			entries[fmt.Sprintf("A%d", i)] = float64((i * 7919) % n)
		}
		must(big.SetBulk(entries))
		for i := 1; i <= n; i++ {
			must(big.SetFormula(fmt.Sprintf("B%d", i),
				fmt.Sprintf("=RANK(A%d, A1:A%d)", i, n)))
		}
		fmt.Printf("ranking %5d rows: %7.2f simulated s (%d evaluations)\n",
			n, big.Elapsed(), big.Evals())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
