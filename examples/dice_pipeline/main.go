// DICE pipeline: the paper's data-wrangling task end to end. Generates
// MACCROBAT-style clinical cases, runs the DICE wrangling under both
// paradigms, verifies they produce the same MACCROBAT-EE records, and
// prints the first few linked records plus the measured comparison.
//
// Run with: go run ./examples/dice_pipeline [-pairs 50] [-workers 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/tasks/dice"
)

func main() {
	pairs := flag.Int("pairs", 50, "number of text/annotation pairs")
	workers := flag.Int("workers", 1, "parallelism for both paradigms")
	flag.Parse()

	task, err := dice.New(dice.Params{Pairs: *pairs, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	script, workflow, err := core.RunBoth(task, core.MustRunConfig(core.WithWorkers(*workers)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MACCROBAT-EE records: %d (paradigms agree: %v)\n\n",
		script.Output.Len(), script.Output.Equal(workflow.Output))
	for i := 0; i < script.Output.Len() && i < 5; i++ {
		r := script.Output.Row(i)
		fmt.Printf("%s %s [%s]\n  trigger: %q  theme: %q\n  sentence: %q\n",
			r.MustStr(0), r.MustStr(1), r.MustStr(2), r.MustStr(3), r.MustStr(4), r.MustStr(5))
	}

	fmt.Printf("\n%-10s %12s %8s %6s\n", "paradigm", "sim time (s)", "LoC", "ops")
	for _, r := range []*struct {
		name string
		res  *core.Result
	}{{"script", script}, {"workflow", workflow}} {
		fmt.Printf("%-10s %12.2f %8d %6d\n", r.name, r.res.SimSeconds, r.res.LinesOfCode, r.res.Operators)
	}
	fmt.Printf("\nworkflow speedup over script: %.2fx (pipelined execution)\n",
		workflow.SpeedupOver(script))
}
