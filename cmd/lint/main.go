// Command lint runs the reproduction's determinism linter (detlint)
// over the given packages and prints structured findings.
//
// Usage:
//
//	go run ./cmd/lint ./...          # whole tree (CI gate)
//	go run ./cmd/lint ./internal/dataflow
//	go run ./cmd/lint -rules         # print the rule catalog
//	go run ./cmd/lint -json ./...    # findings as JSON
//
// Exit status is 0 when no finding fires, 1 otherwise. Findings are
// suppressed line-by-line with `//lint:allow <rule> <reason>` escape
// comments; see DESIGN.md "Static analysis" for the rule catalog.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// ruleDocs is the one-line catalog -rules prints.
var ruleDocs = map[string]string{
	analysis.RuleWallclock: "time.Now/Since/Until outside the telemetry wall-clock shim",
	analysis.RuleRand:      "math/rand import bypassing the seeded xrand generator",
	analysis.RuleMapOrder:  "map-range order leaking into returned slices or serialized output",
	analysis.RuleGoroutine: "goroutine launch without a join barrier in sim/dataflow/lineage",
	analysis.RuleErrDrop:   "discarded error return on the serde/objstore/lineage hot paths",
}

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		rules   = flag.Bool("rules", false, "print the rule catalog and exit")
	)
	flag.Parse()

	if *rules {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-10s %s\n", r, ruleDocs[r])
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	modPath, err := analysis.ModulePathOf(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := analysis.ExpandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}

	cfg := analysis.DefaultConfig(root, modPath)
	findings, err := analysis.LintPackages(cfg, dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(rel(root, f))
		}
		fmt.Printf("lint: %d package dirs, %d findings\n", len(dirs), len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// rel rewrites a finding's file path relative to the module root for
// stable, clickable output.
func rel(root string, f analysis.Finding) string {
	if r, err := filepath.Rel(root, f.File); err == nil && !filepath.IsAbs(r) {
		f.File = r
	}
	return f.String()
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
