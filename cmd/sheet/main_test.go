package main

import (
	"testing"

	"repro/internal/sheet"
)

func TestExecLine(t *testing.T) {
	s := sheet.New(nil)
	lines := []string{
		"A1 = 10",
		`A2 = "fire"`,
		"A3 = TRUE",
		"B1 := =A1*3",
		"print B1",
		"grid A1:B1",
	}
	for _, l := range lines {
		if err := execLine(s, l); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
	}
	v, err := s.Get("B1")
	if err != nil || v.Num != 30 {
		t.Fatalf("B1 = %v, %v", v, err)
	}
}

func TestExecLineErrors(t *testing.T) {
	s := sheet.New(nil)
	bad := []string{
		"just words",
		"A1 = not-a-literal",
		"B1 := SUM(A1)", // formula without '='
		"print ZZZ",     // bad ref? ParseRef accepts ZZZ1 only...
		"grid A1",
		"grid A1:??",
	}
	for _, l := range bad {
		if err := execLine(s, l); err == nil {
			t.Errorf("%q: expected error", l)
		}
	}
}

func TestSetLiteralKinds(t *testing.T) {
	s := sheet.New(nil)
	if err := setLiteral(s, "A1", "3.5"); err != nil {
		t.Fatal(err)
	}
	if err := setLiteral(s, "A2", `"quoted"`); err != nil {
		t.Fatal(err)
	}
	if err := setLiteral(s, "A3", "false"); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("A2")
	if v.Str != "quoted" {
		t.Fatalf("A2 = %v", v)
	}
}
