// Command sheet evaluates a spreadsheet described as a simple text
// script — the third-paradigm engine's CLI. Each line assigns a cell:
//
//	A1 = 120            # numeric literal
//	A2 = "wildfire"     # text literal
//	B1 := =A1 * 2       # formula (after ':=' everything is the formula)
//	print B1            # print a cell
//	grid A1:C5          # print a rectangle of cells
//
// Blank lines and '#' comments are ignored. Edits recalculate
// dependents eagerly, so later `print`s observe earlier edits — and a
// second assignment to an input cell reruns its formulas, exactly like
// a real spreadsheet session.
//
// Usage:
//
//	sheet -script ledger.sheet
//	echo 'A1 = 2
//	B1 := =A1*21
//	print B1' | sheet
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sheet"
)

func main() {
	script := flag.String("script", "", "path to a sheet script (default: stdin)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	s := sheet.New(nil)
	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := execLine(s, line); err != nil {
			fatal(fmt.Errorf("line %d: %w", lineNo, err))
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%d formula evaluations, %.3f simulated s\n", s.Evals(), s.Elapsed())
}

func execLine(s *sheet.Sheet, line string) error {
	switch {
	case strings.HasPrefix(line, "print "):
		ref := strings.TrimSpace(line[len("print "):])
		v, err := s.Get(ref)
		if err != nil {
			return err
		}
		src, _ := s.Formula(ref)
		if src != "" {
			fmt.Printf("%s = %s   (%s)\n", ref, v, src)
		} else {
			fmt.Printf("%s = %s\n", ref, v)
		}
		return nil
	case strings.HasPrefix(line, "grid "):
		return printGrid(s, strings.TrimSpace(line[len("grid "):]))
	case strings.Contains(line, ":="):
		parts := strings.SplitN(line, ":=", 2)
		return s.SetFormula(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	case strings.Contains(line, "="):
		parts := strings.SplitN(line, "=", 2)
		ref := strings.TrimSpace(parts[0])
		lit := strings.TrimSpace(parts[1])
		return setLiteral(s, ref, lit)
	default:
		return fmt.Errorf("cannot parse %q (want `ref = literal`, `ref := =formula`, `print ref` or `grid a:b`)", line)
	}
}

func setLiteral(s *sheet.Sheet, ref, lit string) error {
	if strings.HasPrefix(lit, `"`) && strings.HasSuffix(lit, `"`) && len(lit) >= 2 {
		return s.Set(ref, lit[1:len(lit)-1])
	}
	switch lit {
	case "TRUE", "true":
		return s.Set(ref, true)
	case "FALSE", "false":
		return s.Set(ref, false)
	}
	f, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return fmt.Errorf("literal %q is not a number, quoted string or boolean", lit)
	}
	return s.Set(ref, f)
}

func printGrid(s *sheet.Sheet, spec string) error {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("grid wants a range like A1:C5")
	}
	from, err := sheet.ParseRef(parts[0])
	if err != nil {
		return err
	}
	to, err := sheet.ParseRef(parts[1])
	if err != nil {
		return err
	}
	for row := from.Row; row <= to.Row; row++ {
		var cells []string
		for col := from.Col; col <= to.Col; col++ {
			v, err := s.Get(sheet.Ref{Col: col, Row: row}.String())
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%-12s", v.String()))
		}
		fmt.Println(strings.Join(cells, " "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sheet:", err)
	os.Exit(1)
}
