// Command notebook runs the paper's Figure 1/Figure 8 example — a
// sentiment-analysis notebook with Load, Sentiment_Analysis and Write
// cells — on the script engine, in any cell order, demonstrating the
// arbitrary-execution-order behaviour the paper discusses: running
// "Write" before "Sentiment_Analysis" fails with a Python-style
// NameError and a cell-level traceback.
//
// Usage:
//
//	notebook                  # run all cells top-down
//	notebook -order 0,2,1     # run cells in a custom order
//	notebook -list            # show the cells
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ml/feature"
	"repro/internal/ml/linear"
	"repro/internal/notebook"
)

func buildNotebook() *notebook.Notebook {
	nb := notebook.New("sentiment", nil)

	nb.Add(&notebook.Cell{
		Name: "Load",
		Source: `tweets = load_tweets("wildfire_tweets.jsonl")
labels = [t["relevant"] for t in tweets]
print(f"loaded {len(tweets)} tweets")`,
		Run: func(k *notebook.Kernel) error {
			tweets := datagen.GenerateTweets(400, 7)
			k.Set("tweets", tweets)
			k.Charge(cost.Work{Interp: 0.4})
			return nil
		},
	})

	nb.Add(&notebook.Cell{
		Name: "Sentiment_Analysis",
		Source: `text_clf = Pipeline([CountVectorizer(), TfidfTransformer(), SGDClassifier()])
text_clf.fit([t["text"] for t in tweets], labels)
predicted = text_clf.predict([t["text"] for t in tweets])`,
		Run: func(k *notebook.Kernel) error {
			v, err := k.Need("tweets")
			if err != nil {
				return err
			}
			tweets := v.([]datagen.Tweet)
			return k.Call("fit", func() error {
				hv, err := feature.NewHashingVectorizer(1 << 14)
				if err != nil {
					return err
				}
				counts := hv.TransformAll(datagen.Texts(tweets))
				tfidf := feature.FitTFIDF(counts)
				x := tfidf.TransformAll(counts)
				y := make([]bool, len(tweets))
				for i, t := range tweets {
					y[i] = !t.Framings[datagen.FramingIrrelevant]
				}
				clf := &linear.SGDClassifier{Epochs: 5, Seed: 7}
				if err := clf.Fit(x, y); err != nil {
					return err
				}
				pred := clf.PredictAll(x)
				m, err := linear.Evaluate(pred, y)
				if err != nil {
					return err
				}
				fmt.Printf("  [cell] train accuracy %.3f, F1 %.3f\n", m.Accuracy, m.F1)
				k.Set("predicted", pred)
				k.Charge(cost.Work{Interp: 6.5, Mem: 1.5})
				return nil
			})
		},
	})

	nb.Add(&notebook.Cell{
		Name: "Write",
		Source: `with open("output.txt", "w") as f:
    for line in predicted:
        f.write(str(line) + "\n")`,
		Run: func(k *notebook.Kernel) error {
			v, err := k.Need("predicted")
			if err != nil {
				return err
			}
			pred := v.([]bool)
			fmt.Printf("  [cell] wrote %d predictions\n", len(pred))
			k.Charge(cost.Work{Interp: 0.2})
			return nil
		},
	})
	return nb
}

func main() {
	var (
		order = flag.String("order", "", "comma-separated cell indexes to run (default: all, top-down)")
		list  = flag.Bool("list", false, "list cells and exit")
	)
	flag.Parse()
	nb := buildNotebook()

	if *list {
		for i, c := range nb.Cells() {
			fmt.Printf("[%d] %s (%d lines)\n", i, c.Name, c.LinesOfCode())
		}
		return
	}

	var indexes []int
	if *order == "" {
		for i := 0; i < nb.NumCells(); i++ {
			indexes = append(indexes, i)
		}
	} else {
		for _, part := range strings.Split(*order, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "notebook: bad cell index %q\n", part)
				os.Exit(2)
			}
			indexes = append(indexes, i)
		}
	}

	for _, i := range indexes {
		name := "?"
		if i >= 0 && i < nb.NumCells() {
			name = nb.Cells()[i].Name
		}
		fmt.Printf("In[%d]: %s\n", nb.Kernel().ExecCount()+1, name)
		if err := nb.RunCell(i); err != nil {
			fmt.Printf("  ERROR: %v\n", err)
		}
	}
	fmt.Printf("\nsimulated execution time: %.3f s over %d cell runs (%d notebook lines)\n",
		nb.Elapsed(), nb.Kernel().ExecCount(), nb.LinesOfCode())
}
