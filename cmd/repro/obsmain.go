package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// explainConfig carries the CLI knobs into runExplain.
type explainConfig struct {
	Scale   int
	Seed    uint64
	Workers int
	JSON    bool
	Wall    bool
	Lineage bool
}

// runExplain builds and prints the EXPLAIN-ANALYZE profile of one
// task's workflow. Default output is the deterministic aligned tree;
// -json emits the raw profile object.
func runExplain(task string, cfg explainConfig) error {
	size, err := core.TaskDefaultSize(task)
	if err != nil {
		return err
	}
	if cfg.Scale > 1 {
		size /= cfg.Scale
		if size < 1 {
			size = 1
		}
	}
	p, err := obs.BuildProfile(task, obs.ProfileOptions{
		Size:    size,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Lineage: cfg.Lineage,
		Wall:    cfg.Wall,
	})
	if err != nil {
		return err
	}
	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(p)
	}
	report.Explain(os.Stdout, p)
	return nil
}

// runBenchCheck runs the harness and compares against the newest
// BENCH_*.json baseline. Exit codes: 0 clean, 1 regression detected,
// 2 no comparable baseline (missing or env mismatch) or harness error.
func runBenchCheck(dir string, seed uint64, jsonOut bool) int {
	path, baseline, err := bench.LatestBaseline(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-check: %v\n", err)
		return 2
	}
	fmt.Printf("bench-check: baseline %s, running fresh harness...\n", path)
	fresh, err := bench.Run(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-check: %v\n", err)
		return 2
	}
	cmp := bench.Compare(baseline, fresh)
	cmp.BaselinePath = path
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			return 2
		}
	} else {
		printCompare(cmp)
	}
	switch {
	case len(cmp.EnvMismatch) > 0:
		return 2
	case cmp.Regressions > 0:
		return 1
	default:
		return 0
	}
}

func printCompare(cmp *bench.CompareReport) {
	if len(cmp.EnvMismatch) > 0 {
		fmt.Printf("bench-check: REFUSED — baseline from a different machine configuration:\n")
		for _, m := range cmp.EnvMismatch {
			fmt.Printf("  %s\n", m)
		}
		return
	}
	for _, f := range cmp.Findings {
		switch {
		case f.Regressed:
			fmt.Printf("  REGRESSION %-32s %-5s %12.1f -> %12.1f  (%.2fx, threshold %.0f%%)\n",
				f.Name, f.Kind, f.Baseline, f.Fresh, f.Ratio, 100*f.Threshold)
		case f.Improved:
			fmt.Printf("  improved   %-32s %-5s %12.1f -> %12.1f  (%.2fx)\n",
				f.Name, f.Kind, f.Baseline, f.Fresh, f.Ratio)
		}
	}
	for _, m := range cmp.Missing {
		fmt.Printf("  note: %s\n", m)
	}
	fmt.Printf("bench-check: %d benchmarks compared, %d regressions\n", len(cmp.Findings), cmp.Regressions)
}

// parseServeTask parses one -serve-tasks element into a RunSpec:
// name[:paradigm[:size]].
func parseServeTask(spec string, workers int, seed uint64, tenant string) (core.RunSpec, error) {
	parts := strings.Split(spec, ":")
	req := core.RunSpec{Task: parts[0], Seed: seed, Workers: workers, Tenant: tenant}
	if len(parts) > 1 && parts[1] != "" {
		req.Paradigm = parts[1]
	}
	if len(parts) > 2 {
		size, err := strconv.Atoi(parts[2])
		if err != nil {
			return req, fmt.Errorf("repro: bad size in -serve-tasks element %q: %w", spec, err)
		}
		req.Size = size
	}
	if len(parts) > 3 {
		return req, fmt.Errorf("repro: bad -serve-tasks element %q (want name[:paradigm[:size]])", spec)
	}
	return req, nil
}

// runServe starts the multi-tenant workflow service (fair-share
// queueing behind POST /v1/runs plus the observability endpoints),
// optionally submitting an initial batch of runs, and serves until
// SIGINT/SIGTERM, then shuts down gracefully — HTTP first, then the
// scheduler (draining queued runs).
func runServe(addr, tasks string, workers int, seed uint64, queueCap, nodes int, tenant string) error {
	srv := obs.NewServerWith(obs.NewRegistry(), telemetry.New(), service.Config{QueueCap: queueCap, Nodes: nodes})
	if tasks != "" {
		for _, spec := range strings.Split(tasks, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			req, err := parseServeTask(spec, workers, seed, tenant)
			if err != nil {
				return err
			}
			run, err := srv.Launch(req)
			if err != nil {
				return err
			}
			fmt.Printf("submitted %s (%s, paradigm %s, tenant %s)\n", run.ID, run.Task, run.Paradigm, run.Tenant)
		}
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("workflow service on %s — POST /v1/runs, /v1/tenants, /metrics, /runs/{id}/events, /runs/{id}/trace, /debug/pprof\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("%v: shutting down\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	srv.Close()
	return nil
}

// specFlags carries the run mode's CLI knobs into the RunSpec.
type specFlags struct {
	Paradigm  string
	Size      int
	Seed      uint64
	Workers   int
	Nodes     int
	Tenant    string
	Scale     int
	FaultRate float64
	Lineage   bool
	Optimize  bool
}

// runSpecMode executes one task through the unified RunSpec — the same
// decode target POST /v1/runs uses — and prints per-paradigm results.
// specJSON, when set, is the raw spec (JSON literal or @file); task
// and the individual flags populate it otherwise.
func runSpecMode(task, specJSON string, f specFlags, jsonOut bool) error {
	var spec core.RunSpec
	if specJSON != "" {
		raw := []byte(specJSON)
		if strings.HasPrefix(specJSON, "@") {
			b, err := os.ReadFile(specJSON[1:])
			if err != nil {
				return err
			}
			raw = b
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("repro: bad -spec JSON: %w", err)
		}
	} else {
		spec = core.RunSpec{
			Task:      task,
			Paradigm:  f.Paradigm,
			Size:      f.Size,
			Seed:      f.Seed,
			Workers:   f.Workers,
			Nodes:     f.Nodes,
			Tenant:    f.Tenant,
			FaultRate: f.FaultRate,
			Lineage:   f.Lineage,
			Optimize:  f.Optimize,
		}
	}
	spec, err := spec.Normalize()
	if err != nil {
		return err
	}
	if spec.Size <= 0 && f.Scale > 1 {
		size, err := core.TaskDefaultSize(spec.Task)
		if err != nil {
			return err
		}
		spec.Size = size / f.Scale
		if spec.Size < 1 {
			spec.Size = 1
		}
	}
	t, err := spec.NewTask()
	if err != nil {
		return err
	}
	rc, err := spec.Config()
	if err != nil {
		return err
	}
	type row struct {
		Paradigm     string  `json:"paradigm"`
		SimSeconds   float64 `json:"sim_seconds"`
		Procs        int     `json:"parallel_procs"`
		Operators    int     `json:"operators"`
		ShuffleBytes int64   `json:"shuffle_bytes,omitempty"`
		SpillBytes   int64   `json:"spill_bytes,omitempty"`
		OutputDigest string  `json:"output_digest"`
	}
	var rows []row
	for _, p := range spec.Paradigms() {
		res, err := t.Run(p, rc)
		if err != nil {
			return err
		}
		rows = append(rows, row{
			Paradigm:     p.String(),
			SimSeconds:   res.SimSeconds,
			Procs:        res.ParallelProcs,
			Operators:    res.Operators,
			ShuffleBytes: res.Trace.ShuffleBytes,
			SpillBytes:   res.Trace.SpillBytes,
			OutputDigest: fmt.Sprintf("%016x", relation.Digest(res.Output)),
		})
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"spec": spec, "results": rows})
	}
	out := [][]string{{"paradigm", "sim s", "procs", "operators", "output digest"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Paradigm, report.Secs(r.SimSeconds), strconv.Itoa(r.Procs),
			strconv.Itoa(r.Operators), r.OutputDigest,
		})
	}
	report.Table(os.Stdout, out)
	return nil
}
