package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// explainConfig carries the CLI knobs into runExplain.
type explainConfig struct {
	Scale   int
	Seed    uint64
	Workers int
	JSON    bool
	Wall    bool
	Lineage bool
}

// runExplain builds and prints the EXPLAIN-ANALYZE profile of one
// task's workflow. Default output is the deterministic aligned tree;
// -json emits the raw profile object.
func runExplain(task string, cfg explainConfig) error {
	size, err := core.TaskDefaultSize(task)
	if err != nil {
		return err
	}
	if cfg.Scale > 1 {
		size /= cfg.Scale
		if size < 1 {
			size = 1
		}
	}
	p, err := obs.BuildProfile(task, obs.ProfileOptions{
		Size:    size,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Lineage: cfg.Lineage,
		Wall:    cfg.Wall,
	})
	if err != nil {
		return err
	}
	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(p)
	}
	report.Explain(os.Stdout, p)
	return nil
}

// runBenchCheck runs the harness and compares against the newest
// BENCH_*.json baseline. Exit codes: 0 clean, 1 regression detected,
// 2 no comparable baseline (missing or env mismatch) or harness error.
func runBenchCheck(dir string, seed uint64, jsonOut bool) int {
	path, baseline, err := bench.LatestBaseline(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-check: %v\n", err)
		return 2
	}
	fmt.Printf("bench-check: baseline %s, running fresh harness...\n", path)
	fresh, err := bench.Run(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-check: %v\n", err)
		return 2
	}
	cmp := bench.Compare(baseline, fresh)
	cmp.BaselinePath = path
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			return 2
		}
	} else {
		printCompare(cmp)
	}
	switch {
	case len(cmp.EnvMismatch) > 0:
		return 2
	case cmp.Regressions > 0:
		return 1
	default:
		return 0
	}
}

func printCompare(cmp *bench.CompareReport) {
	if len(cmp.EnvMismatch) > 0 {
		fmt.Printf("bench-check: REFUSED — baseline from a different machine configuration:\n")
		for _, m := range cmp.EnvMismatch {
			fmt.Printf("  %s\n", m)
		}
		return
	}
	for _, f := range cmp.Findings {
		switch {
		case f.Regressed:
			fmt.Printf("  REGRESSION %-32s %-5s %12.1f -> %12.1f  (%.2fx, threshold %.0f%%)\n",
				f.Name, f.Kind, f.Baseline, f.Fresh, f.Ratio, 100*f.Threshold)
		case f.Improved:
			fmt.Printf("  improved   %-32s %-5s %12.1f -> %12.1f  (%.2fx)\n",
				f.Name, f.Kind, f.Baseline, f.Fresh, f.Ratio)
		}
	}
	for _, m := range cmp.Missing {
		fmt.Printf("  note: %s\n", m)
	}
	fmt.Printf("bench-check: %d benchmarks compared, %d regressions\n", len(cmp.Findings), cmp.Regressions)
}

// parseServeTask parses one -serve-tasks element: name[:paradigm[:size]].
func parseServeTask(spec string, workers int, seed uint64) (obs.RunRequest, error) {
	parts := strings.Split(spec, ":")
	req := obs.RunRequest{Task: parts[0], Seed: seed, Workers: workers}
	if len(parts) > 1 && parts[1] != "" {
		req.Paradigm = parts[1]
	}
	if len(parts) > 2 {
		size, err := strconv.Atoi(parts[2])
		if err != nil {
			return req, fmt.Errorf("repro: bad size in -serve-tasks element %q: %w", spec, err)
		}
		req.Size = size
	}
	if len(parts) > 3 {
		return req, fmt.Errorf("repro: bad -serve-tasks element %q (want name[:paradigm[:size]])", spec)
	}
	return req, nil
}

// runServe starts the observability server, optionally launching an
// initial batch of task runs, and serves until SIGINT/SIGTERM, then
// shuts down gracefully.
func runServe(addr, tasks string, workers int, seed uint64) error {
	srv := obs.NewServer(obs.NewRegistry(), telemetry.New())
	if tasks != "" {
		for _, spec := range strings.Split(tasks, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			req, err := parseServeTask(spec, workers, seed)
			if err != nil {
				return err
			}
			run, err := srv.Launch(req)
			if err != nil {
				return err
			}
			fmt.Printf("launched %s (%s, paradigm %s)\n", run.ID, run.Task, run.Paradigm)
		}
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("observability server on %s — /metrics /runs /runs/{id}/events /runs/{id}/trace /debug/pprof\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("%v: shutting down\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}
