// Command repro runs the reproduction's experiment suite — every table
// and figure of the paper's evaluation — and the long-running
// multi-tenant workflow service in front of the same engines.
//
// Usage (subcommand modes; each accepts the shared flags below):
//
//	repro run dice            # one task via the unified RunSpec
//	                          # (-paradigm, -size, -workers, -spec JSON)
//	repro serve :8080         # multi-tenant service + observability:
//	                          # POST /v1/runs, fair-share queueing,
//	                          # /metrics, SSE progress, traces, pprof
//	repro explain dice        # EXPLAIN-ANALYZE profile of a workflow
//	repro validate            # static DAG validation; exit 1 on findings
//	repro validate -optimize  # + cost-based rewrite report (OPT0xx) per plan
//	repro run dice -optimize  # run with the plan optimizer; output bytes
//	                          # are bit-identical, only the schedule changes
//	repro bench-check         # compare fresh bench vs newest BENCH_*.json
//	repro experiment fig13a   # one experiment (repro experiment all)
//
// Flag spellings of the modes (-run, -serve, -explain, -validate,
// -bench-check, -experiment) remain accepted but are deprecated.
//
//	repro                     # run everything at paper scale
//	repro -scale 10           # shrink datasets 10x for a quick pass
//	repro -list               # list experiment IDs
//	repro -bench-json F.json  # wall-clock benchmark harness, JSON to F.json
//	repro -trace out.json     # run one task under both paradigms, write
//	                          # a Chrome trace (chrome://tracing, Perfetto)
//	repro -trace-task kge     # which task -trace/-metrics instrument
//	repro -metrics            # print the telemetry summary + metrics dump
//	repro -faults 4           # arm deterministic fault injection (4 kills
//	                          # per 100 sim-seconds) for every run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run (see -list)")
		runTask    = flag.String("run", "", "run one task through the unified RunSpec (with -paradigm, -size, -workers, -tenant; or -spec for raw JSON) and print its results")
		specJSON   = flag.String("spec", "", "raw core.RunSpec JSON (or @file) for the run mode; individual flags override nothing once set")
		paradigm   = flag.String("paradigm", "both", "paradigm for the run mode: script, workflow or both")
		size       = flag.Int("size", 0, "input size for the run mode; 0 uses the task's paper-scale default")
		tenant     = flag.String("tenant", "", "tenant attribution for the run mode and -serve submissions")
		queueCap   = flag.Int("queue-cap", 0, "per-tenant pending-queue bound for -serve admission control; 0 uses the service default (64)")
		scale      = flag.Int("scale", 1, "dataset shrink factor (1 = paper scale)")
		seed       = flag.Uint64("seed", 1, "dataset seed")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		charts     = flag.Bool("charts", true, "render ASCII charts for figure experiments")
		jsonOut    = flag.Bool("json", false, "emit results as JSON instead of tables")
		benchJSON  = flag.String("bench-json", "", "run the wall-clock benchmark harness and write its JSON report to this file")
		traceOut   = flag.String("trace", "", "run -trace-task under both paradigms and write a Chrome trace-event JSON file")
		metrics    = flag.Bool("metrics", false, "with -trace (or alone), print the telemetry summary and metrics dump")
		traceTask  = flag.String("trace-task", "dice", "task to instrument for -trace/-metrics ("+strings.Join(experiments.TraceTasks(), ", ")+")")
		traceWall  = flag.Bool("trace-wall", false, "include non-deterministic wall-clock spans in the trace and metrics")
		faultRate  = flag.Float64("faults", 0, "fault rate in kills per 100 simulated seconds; arms deterministic fault injection (and workflow checkpointing) for every run")
		lineageOn  = flag.Bool("lineage", false, "with -trace/-metrics: arm the versioned artifact store and run each paradigm twice, so cache hits and commits appear in the trace")
		validate   = flag.Bool("validate", false, "statically validate every task's workflow DAG (cycles, arity, schemas, partitioning, checkpoints) without executing; exit 1 if any diagnostic fires")
		serveAddr  = flag.String("serve", "", "start the live observability server on this address (e.g. :8080): /metrics, /runs, /runs/{id}/events SSE, /runs/{id}/trace, /debug/pprof")
		serveTasks = flag.String("serve-tasks", "", "comma-separated tasks to launch as -serve starts; each is name[:paradigm[:size]] (e.g. dice:workflow:50)")
		explainOf  = flag.String("explain", "", "run a task's workflow and print an EXPLAIN-ANALYZE profile (aligned tree; -json for the raw profile; -lineage for cache-hit annotation; -trace-wall adds wall columns)")
		benchCheck = flag.Bool("bench-check", false, "run the wall-clock harness and compare against the latest BENCH_*.json baseline in -bench-dir; exit 1 on regression, 2 when no comparable baseline exists")
		benchDir   = flag.String("bench-dir", ".", "directory searched for BENCH_*.json baselines by -bench-check")
		optimize   = flag.Bool("optimize", false, "run the cost-based plan optimizer over every workflow plan (run, validate and experiment modes); outputs stay bit-identical, only the schedule changes")
		workers    = flag.Int("workers", 1, "per-operator worker count for run, -explain and -serve-tasks runs")
		nodes      = flag.Int("nodes", 0, "simulated cluster nodes for the run and serve modes; >1 enables the sharded tier (8 vCPUs per node), lifts the 32-worker ceiling and sizes the serve budget")
	)
	defaultUsage := flag.Usage
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repro [run|serve|explain|validate|bench-check|experiment] [args] [flags]\n")
		fmt.Fprintf(flag.CommandLine.Output(), "The bare-flag mode spellings (-run, -serve, -explain, -validate, -bench-check,\n-experiment) are deprecated; prefer the subcommand forms above.\n\n")
		defaultUsage()
	}
	args, err := translateMode(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(2)
	}

	mkCfg := func() (experiments.Config, error) {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		if *faultRate > 0 {
			// CheckpointEvery stays zero: the workflow engine applies
			// its default epoch length once injection is armed.
			rc, err := core.NewRunConfig(core.WithFaults(faults.Plan{
				Seed:         *seed,
				Rate:         *faultRate,
				NodeFraction: 0.25,
			}))
			if err != nil {
				return cfg, err
			}
			cfg.RunConfig = rc
		}
		// Set on the (possibly zero-valued) RunConfig directly: the
		// experiment drivers normalize their derived configs themselves.
		cfg.RunConfig.Optimize = *optimize
		return cfg, nil
	}

	if *benchJSON != "" {
		if err := runBench(*benchJSON, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchCheck {
		os.Exit(runBenchCheck(*benchDir, *seed, *jsonOut))
	}

	if *runTask != "" || *specJSON != "" {
		if err := runSpecMode(*runTask, *specJSON, specFlags{
			Paradigm: *paradigm, Size: *size, Seed: *seed, Workers: *workers, Nodes: *nodes,
			Tenant: *tenant, Scale: *scale, FaultRate: *faultRate, Lineage: *lineageOn,
			Optimize: *optimize,
		}, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *explainOf != "" {
		if err := runExplain(*explainOf, explainConfig{
			Scale: *scale, Seed: *seed, Workers: *workers,
			JSON: *jsonOut, Wall: *traceWall, Lineage: *lineageOn,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *serveAddr != "" {
		if err := runServe(*serveAddr, *serveTasks, *workers, *seed, *queueCap, *nodes, *tenant); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *validate {
		cfg, err := mkCfg()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ok, err := runValidate(cfg, *jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" || *metrics {
		cfg, err := mkCfg()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runTrace(*traceTask, *traceOut, *metrics, *traceWall, *lineageOn, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs {
			desc, _ := experiments.Describe(id)
			fmt.Printf("%-8s %s\n", id, desc)
		}
		fmt.Println("\ntasks (for -trace-task; size is the paper-scale default):")
		for _, name := range core.TaskNames() {
			size, _ := core.TaskDefaultSize(name)
			fmt.Printf("%-8s size=%d\n", name, size)
		}
		return
	}

	cfg, err := mkCfg()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ids := experiments.IDs
	if *experiment != "all" {
		if _, err := experiments.Describe(*experiment); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ids = []string{*experiment}
	}
	for _, id := range ids {
		if err := run(id, cfg, *charts && !*jsonOut, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// translateMode rewrites a leading subcommand (run, serve, explain,
// validate, bench-check, experiment) into the equivalent legacy flag
// spelling, so both forms share one flag set and one code path. Args
// that already start with a flag pass through untouched.
func translateMode(args []string) ([]string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return args, nil
	}
	mode, rest := args[0], args[1:]
	// takeArg pops a leading positional value (the task name, address
	// or experiment ID) when one is present.
	takeArg := func() (string, bool) {
		if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			v := rest[0]
			rest = rest[1:]
			return v, true
		}
		return "", false
	}
	switch mode {
	case "run":
		task, ok := takeArg()
		if !ok {
			return nil, fmt.Errorf("repro run: missing task name (e.g. repro run dice)")
		}
		return append([]string{"-run", task}, rest...), nil
	case "serve":
		addr, ok := takeArg()
		if !ok {
			addr = ":8080"
		}
		return append([]string{"-serve", addr}, rest...), nil
	case "explain":
		task, ok := takeArg()
		if !ok {
			return nil, fmt.Errorf("repro explain: missing task name (e.g. repro explain dice)")
		}
		return append([]string{"-explain", task}, rest...), nil
	case "validate":
		return append([]string{"-validate"}, rest...), nil
	case "bench-check":
		return append([]string{"-bench-check"}, rest...), nil
	case "experiment":
		id, ok := takeArg()
		if !ok {
			id = "all"
		}
		return append([]string{"-experiment", id}, rest...), nil
	default:
		return nil, fmt.Errorf("repro: unknown mode %q (want run, serve, explain, validate, bench-check or experiment)", mode)
	}
}

// runTrace runs one task under both paradigms with telemetry attached,
// optionally writing a Chrome trace and printing the metrics report.
func runTrace(task, traceOut string, metrics, wall, lineageOn bool, cfg experiments.Config) error {
	traceFn := experiments.Trace
	if lineageOn {
		traceFn = experiments.TraceLineage
	}
	rec, err := traceFn(task, cfg)
	if err != nil {
		return err
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChromeTrace(f, telemetry.ExportOptions{IncludeWall: wall}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d spans; load in chrome://tracing or Perfetto)\n", traceOut, len(rec.Spans()))
	}
	rec.WriteSummary(os.Stdout)
	report.OperatorTable(os.Stdout, rec)
	if metrics {
		return rec.WriteMetrics(os.Stdout, wall)
	}
	return nil
}

// runValidate statically checks every task's workflow DAG and prints
// per-task operator/edge counts plus any diagnostics. It returns false
// when a plan has findings.
func runValidate(cfg experiments.Config, jsonOut bool) (bool, error) {
	reports, err := experiments.ValidatePlans(cfg)
	if err != nil {
		return false, err
	}
	total := 0
	for _, r := range reports {
		total += len(r.Diags)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return false, err
		}
		return total == 0, nil
	}
	out := [][]string{{"task", "workers", "operators", "edges", "diagnostics", "rewrites"}}
	rewrites := 0
	for _, r := range reports {
		rewrites += r.Applied
		out = append(out, []string{
			r.Task, strconv.Itoa(r.Workers), strconv.Itoa(r.Operators),
			strconv.Itoa(r.Edges), strconv.Itoa(len(r.Diags)), strconv.Itoa(r.Applied),
		})
	}
	report.Table(os.Stdout, out)
	for _, r := range reports {
		for _, d := range r.Diags {
			fmt.Printf("%s: %s\n", r.Task, d)
		}
		// Optimizer decisions are explanations, not findings; they never
		// affect the exit code.
		for _, d := range r.Rewrites {
			fmt.Printf("%s: %s\n", r.Task, d)
		}
	}
	fmt.Printf("plan validation: %d tasks, %d diagnostics, %d rewrites applied\n", len(reports), total, rewrites)
	return total == 0, nil
}

// runBench executes the wall-clock harness and writes its report.
func runBench(path string, seed uint64) error {
	rep, err := bench.Run(seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d micro, %d macro benchmarks)\n", path, len(rep.Micro), len(rep.Macro))
	return nil
}

func run(id string, cfg experiments.Config, charts, jsonOut bool) error {
	desc, err := experiments.Describe(id)
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Println("==", desc)
	}
	w := os.Stdout
	emit := func(v any) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"experiment": id, "description": desc, "result": v})
	}
	switch id {
	case "table1":
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(rows)
		}
		out := [][]string{{"products", "python (s)", "scala (s)", "paper python", "paper scala", "outputs agree"}}
		for _, r := range rows {
			out = append(out, []string{
				strconv.Itoa(r.Products), report.Secs(r.PythonSecs), report.Secs(r.ScalaSecs),
				report.Secs(r.PaperPython), report.Secs(r.PaperScala), fmt.Sprint(r.OutputsAgree),
			})
		}
		report.Table(w, out)
	case "fig12a":
		rows, err := experiments.Fig12a(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(rows)
		}
		out := [][]string{{"task", "script LoC", "workflow LoC", "paper script", "paper workflow"}}
		var labels []string
		var values []float64
		for _, r := range rows {
			out = append(out, []string{
				r.Task, strconv.Itoa(r.ScriptLoC), strconv.Itoa(r.WorkflowLoC),
				strconv.Itoa(r.PaperScript), strconv.Itoa(r.PaperWorkflow),
			})
			labels = append(labels, r.Task+"/script", r.Task+"/workflow")
			values = append(values, float64(r.ScriptLoC), float64(r.WorkflowLoC))
		}
		report.Table(w, out)
		if charts {
			report.Bar(w, "lines of code", labels, values, 40)
		}
	case "fig12b":
		res, err := experiments.Fig12b(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(res)
		}
		out := [][]string{{"operators", "workflow (s)", "paper"}}
		var pts []report.Point
		for _, p := range res.Points {
			paper := "-"
			if p.Paper > 0 {
				paper = report.Secs(p.Paper)
			}
			out = append(out, []string{strconv.Itoa(p.Ops), report.Secs(p.Seconds), paper})
			pts = append(pts, report.Point{X: float64(p.Ops), Y: p.Seconds})
		}
		out = append(out, []string{"script", report.Secs(res.ScriptRef), report.Secs(res.PaperScript)})
		report.Table(w, out)
		if charts {
			report.Chart(w, "KGE time vs operator count", []report.Series{{Name: "workflow", Points: pts}}, 48, 10)
		}
	case "fig13a", "fig13b", "fig13c", "fig13d":
		fn := map[string]func(experiments.Config) ([]experiments.ScalePoint, error){
			"fig13a": experiments.Fig13aDICE,
			"fig13b": experiments.Fig13bWEF,
			"fig13c": experiments.Fig13cKGE,
			"fig13d": experiments.Fig13dGOTTA,
		}[id]
		pts, err := fn(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(pts)
		}
		out := [][]string{{"size", "script (s)", "workflow (s)", "paper script", "paper workflow", "outputs agree"}}
		var s1, s2 []report.Point
		for _, p := range pts {
			ps, pw := "-", "-"
			if p.PaperScript > 0 {
				ps = report.Secs(p.PaperScript)
			}
			if p.PaperWorkflow > 0 {
				pw = report.Secs(p.PaperWorkflow)
			}
			out = append(out, []string{
				strconv.Itoa(p.Size), report.Secs(p.Script), report.Secs(p.Workflow),
				ps, pw, fmt.Sprint(p.OutputsAgree),
			})
			s1 = append(s1, report.Point{X: float64(p.Size), Y: p.Script})
			s2 = append(s2, report.Point{X: float64(p.Size), Y: p.Workflow})
		}
		report.Table(w, out)
		if charts {
			report.Chart(w, "time vs dataset size", []report.Series{
				{Name: "script", Points: s1}, {Name: "workflow", Points: s2},
			}, 48, 10)
		}
	case "fig14a", "fig14b", "fig14c":
		fn := map[string]func(experiments.Config) ([]experiments.WorkerPoint, error){
			"fig14a": experiments.Fig14aDICE,
			"fig14b": experiments.Fig14bGOTTA,
			"fig14c": experiments.Fig14cKGE,
		}[id]
		pts, err := fn(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(pts)
		}
		out := [][]string{{"workers", "script (s)", "workflow (s)", "paper script", "paper workflow", "parallel procs (s/w)"}}
		var s1, s2 []report.Point
		for _, p := range pts {
			out = append(out, []string{
				strconv.Itoa(p.Workers), report.Secs(p.Script), report.Secs(p.Workflow),
				report.Secs(p.PaperScript), report.Secs(p.PaperWorkflow),
				fmt.Sprintf("%d/%d", p.ScriptProcs, p.WorkflowProcs),
			})
			s1 = append(s1, report.Point{X: float64(p.Workers), Y: p.Script})
			s2 = append(s2, report.Point{X: float64(p.Workers), Y: p.Workflow})
		}
		report.Table(w, out)
		if charts {
			report.Chart(w, "time vs workers", []report.Series{
				{Name: "script", Points: s1}, {Name: "workflow", Points: s2},
			}, 48, 10)
		}
	case "recovery":
		pts, err := experiments.RecoveryOverhead(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(pts)
		}
		report.RecoveryCurve(w, pts, charts)
	case "iterate":
		pts, err := experiments.Iterate(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(pts)
		}
		report.IterationTable(w, pts, charts)
	case "serving":
		pts, err := experiments.Serving(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(pts)
		}
		report.ServingCurve(w, pts, charts)
	case "scale":
		rows, err := experiments.Scale(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(rows)
		}
		report.ScaleCurve(w, rows, charts)
	case "ablation-torch", "ablation-store", "ablation-serde", "ablation-batch":
		fn := map[string]func(experiments.Config) ([]experiments.AblationRow, error){
			"ablation-torch": experiments.AblationTorchPin,
			"ablation-store": experiments.AblationObjectStore,
			"ablation-serde": experiments.AblationSerde,
			"ablation-batch": experiments.AblationBatching,
		}[id]
		rows, err := fn(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(rows)
		}
		out := [][]string{{"configuration", "time (s)", "note"}}
		for _, r := range rows {
			out = append(out, []string{r.Config, report.Secs(r.Seconds), r.Note})
		}
		report.Table(w, out)
	case "autotune":
		out, err := experiments.AutoTuneDICE(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(out)
		}
		rows := [][]string{{"operator", "workers"}}
		for _, r := range out.Rows {
			rows = append(rows, []string{r.Operator, strconv.Itoa(r.Workers)})
		}
		report.Table(w, rows)
		fmt.Fprintf(w, "baseline (1 worker/op): %s s   tuned: %s s   cores used: %d\n",
			report.Secs(out.BaselineSeconds), report.Secs(out.TunedSeconds), out.CoresUsed)
	case "optimize":
		rows, err := experiments.OptimizerSweep(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(rows)
		}
		out := [][]string{{"task", "nodes", "off (s)", "on (s)", "applied", "rejected", "digests equal"}}
		for _, r := range rows {
			out = append(out, []string{
				r.Task, strconv.Itoa(r.Nodes), report.Secs(r.Off), report.Secs(r.On),
				strconv.Itoa(r.Applied), strconv.Itoa(r.Rejected), fmt.Sprint(r.DigestsEqual),
			})
		}
		report.Table(w, out)
		for _, r := range rows {
			for _, d := range r.Rewrites {
				fmt.Fprintf(w, "%s/nodes=%d: %s\n", r.Task, r.Nodes, d)
			}
		}
	case "ext-spreadsheet":
		pts, err := experiments.ExtSpreadsheetKGE(cfg)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(pts)
		}
		rows := [][]string{{"size", "script (s)", "workflow (s)", "spreadsheet (s)", "outputs agree"}}
		var s1, s2, s3 []report.Point
		for _, p := range pts {
			rows = append(rows, []string{
				strconv.Itoa(p.Size), report.Secs(p.Script), report.Secs(p.Workflow),
				report.Secs(p.Spreadsheet), fmt.Sprint(p.AllAgree),
			})
			s1 = append(s1, report.Point{X: float64(p.Size), Y: p.Script})
			s2 = append(s2, report.Point{X: float64(p.Size), Y: p.Workflow})
			s3 = append(s3, report.Point{X: float64(p.Size), Y: p.Spreadsheet})
		}
		report.Table(w, rows)
		if charts {
			report.Chart(w, "KGE under three paradigms", []report.Series{
				{Name: "script", Points: s1}, {Name: "workflow", Points: s2}, {Name: "spreadsheet", Points: s3},
			}, 48, 10)
		}
	default:
		return fmt.Errorf("repro: unhandled experiment %q", id)
	}
	return nil
}
