// Command datagen writes the four synthetic datasets to disk in the
// formats the tasks describe: MACCROBAT-style (.txt, .ann) pairs for
// DICE, JSONL tweets for WEF, JSONL passages with cloze questions for
// GOTTA, and JSONL products plus purchase triples for KGE.
//
// Usage:
//
//	datagen -out data/ -pairs 200 -tweets 800 -passages 16 -products 6800
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/brat"
	"repro/internal/datagen"
)

func main() {
	var (
		out      = flag.String("out", "data", "output directory")
		seed     = flag.Uint64("seed", 1, "generator seed")
		pairs    = flag.Int("pairs", 200, "MACCROBAT text/annotation pairs")
		tweets   = flag.Int("tweets", 800, "labeled wildfire tweets")
		passages = flag.Int("passages", 16, "GOTTA passages")
		products = flag.Int("products", 6800, "KGE candidate products")
		users    = flag.Int("users", 8, "KGE users")
	)
	flag.Parse()

	if err := run(*out, *seed, *pairs, *tweets, *passages, *products, *users); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, seed uint64, pairs, tweets, passages, products, users int) error {
	macDir := filepath.Join(out, "maccrobat")
	if err := os.MkdirAll(macDir, 0o755); err != nil {
		return err
	}

	// DICE: MACCROBAT pairs.
	for _, c := range datagen.GenerateClinicalCases(pairs, seed) {
		if err := os.WriteFile(filepath.Join(macDir, c.ID+".txt"), []byte(c.Text), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(macDir, c.ID+".ann"), []byte(brat.Render(c.Ann)), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d MACCROBAT pairs to %s\n", pairs, macDir)

	// WEF: tweets.
	if err := writeJSONL(filepath.Join(out, "wildfire_tweets.jsonl"), func(emit func(any) error) error {
		for _, t := range datagen.GenerateTweets(tweets, seed) {
			rec := map[string]any{"id": t.ID, "text": t.Text}
			for i, name := range datagen.FramingNames {
				rec[name] = t.Framings[i]
			}
			if err := emit(rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %d tweets\n", tweets)

	// GOTTA: passages.
	if err := writeJSONL(filepath.Join(out, "passages.jsonl"), func(emit func(any) error) error {
		for _, p := range datagen.GeneratePassages(passages, 5, seed) {
			qas := make([]map[string]string, len(p.QAs))
			for i, qa := range p.QAs {
				qas[i] = map[string]string{"cloze": qa.Cloze, "answer": qa.Answer}
			}
			if err := emit(map[string]any{"id": p.ID, "text": p.Text, "qas": qas}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %d passages\n", passages)

	// KGE: products and purchases.
	world := datagen.GenerateProducts(products, users, 0.1, seed)
	if err := writeJSONL(filepath.Join(out, "candidates.jsonl"), func(emit func(any) error) error {
		for _, p := range world.Products {
			if err := emit(map[string]any{
				"asin": p.ASIN, "title": p.Title, "category": p.Category,
				"price": p.Price, "instock": p.InStock,
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(out, "purchases.jsonl"), func(emit func(any) error) error {
		for _, tr := range world.Purchases {
			if err := emit(map[string]any{"user": tr.Head, "rel": tr.Rel, "asin": tr.Tail}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %d products and %d purchases\n", products, len(world.Purchases))
	return nil
}

func writeJSONL(path string, produce func(emit func(any) error) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := produce(func(v any) error { return enc.Encode(v) }); err != nil {
		return err
	}
	return f.Close()
}
