// Command texera executes a workflow described in JSON on the
// GUI-workflow engine, streaming per-operator progress (state and
// tuple counts) the way the Texera interface does, and printing each
// sink's result plus the simulated cluster execution time.
//
// Usage:
//
//	texera -spec workflow.json
//	texera -spec workflow.json -progress=false -limit 5
//
// See examples/quickstart for a spec that can be written to disk.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/dataflow"
	"repro/internal/report"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the workflow JSON spec")
		progress = flag.Bool("progress", true, "print operator progress while running")
		limit    = flag.Int("limit", 20, "max result rows to print per sink")
		timeline = flag.Bool("timeline", false, "render a Gantt view of the simulated schedule")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "texera: -spec is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	spec, err := dataflow.ParseSpec(data)
	if err != nil {
		fatal(err)
	}
	w, err := dataflow.Build(spec)
	if err != nil {
		fatal(err)
	}
	ex, err := w.Start(context.Background(), dataflow.Config{})
	if err != nil {
		fatal(err)
	}
	done := make(chan struct{})
	var res *dataflow.Result
	var runErr error
	go func() {
		res, runErr = ex.Wait()
		close(done)
	}()
	if *progress {
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
	loop:
		for {
			select {
			case <-done:
				break loop
			case <-ticker.C:
				printProgress(ex)
			}
		}
	} else {
		<-done
	}
	if runErr != nil {
		fatal(runErr)
	}
	printProgress(ex)

	sinkNames := make([]string, 0, len(res.Tables))
	for name := range res.Tables {
		sinkNames = append(sinkNames, name)
	}
	sort.Strings(sinkNames)
	for _, name := range sinkNames {
		tbl := res.Tables[name]
		fmt.Printf("\nsink %q (%d rows, schema: %s):\n", name, tbl.Len(), tbl.Schema())
		rows := [][]string{}
		header := []string{}
		for i := 0; i < tbl.Schema().Len(); i++ {
			header = append(header, tbl.Schema().Field(i).Name)
		}
		rows = append(rows, header)
		for i := 0; i < tbl.Len() && i < *limit; i++ {
			row := []string{}
			for _, v := range tbl.Row(i) {
				row = append(row, fmt.Sprint(v))
			}
			rows = append(rows, row)
		}
		report.Table(os.Stdout, rows)
		if tbl.Len() > *limit {
			fmt.Printf("... %d more rows\n", tbl.Len()-*limit)
		}
	}
	fmt.Printf("\nsimulated cluster execution time: %.3f s\n", res.SimSeconds)
	if *timeline {
		spans, err := dataflow.Timeline(res.Trace, cost.Default())
		if err != nil {
			fatal(err)
		}
		fmt.Println("\noperator timeline (simulated):")
		fmt.Print(dataflow.RenderTimeline(spans, 60))
	}
}

func printProgress(ex *dataflow.Execution) {
	fmt.Println("operators:")
	for _, p := range ex.Progress() {
		fmt.Printf("  %-24s %-12s in=%-8d out=%-8d workers=%d\n",
			p.Name, p.State, p.InTuples, p.OutTuples, p.Workers)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "texera:", err)
	os.Exit(1)
}
